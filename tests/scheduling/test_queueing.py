import pytest

from repro.scheduling.queueing import ImplicitQuota, PrincipalQueues


class TestPrincipalQueues:
    def test_fifo_order(self):
        q = PrincipalQueues(["A"])
        for i in range(5):
            q.enqueue("A", f"r{i}", now=float(i))
        out = q.dequeue_upto("A", 3)
        assert [item for item, _ in out] == ["r0", "r1", "r2"]
        assert q.length("A") == 2

    def test_dequeue_more_than_available(self):
        q = PrincipalQueues(["A"])
        q.enqueue("A", "r", now=0.0)
        assert len(q.dequeue_upto("A", 10)) == 1
        assert q.dequeue_upto("A", 10) == []

    def test_negative_count_rejected(self):
        q = PrincipalQueues(["A"])
        with pytest.raises(ValueError):
            q.dequeue_upto("A", -1)

    def test_bounded_depth_drops(self):
        q = PrincipalQueues(["A"], max_depth=2)
        assert q.enqueue("A", 1, 0.0)
        assert q.enqueue("A", 2, 0.0)
        assert not q.enqueue("A", 3, 0.0)
        assert q.stats["A"].dropped == 1

    def test_lengths_and_stats(self):
        q = PrincipalQueues(["A", "B"])
        q.enqueue("A", 1, 0.0)
        assert q.lengths() == {"A": 1, "B": 0}
        assert q.stats["A"].enqueued == 1
        assert q.stats["A"].peak == 1

    def test_peek_ages(self):
        q = PrincipalQueues(["A"])
        q.enqueue("A", 1, now=1.0)
        q.enqueue("A", 2, now=3.0)
        assert q.peek_ages("A", now=5.0) == [4.0, 2.0]

    def test_unknown_principal(self):
        q = PrincipalQueues(["A"])
        with pytest.raises(KeyError):
            q.enqueue("Z", 1, 0.0)


class TestImplicitQuota:
    def test_admit_within_quota(self):
        iq = ImplicitQuota(["A"])
        iq.new_window({"A": 3.0})
        assert [iq.try_admit("A") for _ in range(4)] == [True, True, True, False]

    def test_fractional_quota_carries(self):
        # 0.5/window admits one request every two windows.
        iq = ImplicitQuota(["A"])
        admitted = 0
        for _ in range(10):
            iq.new_window({"A": 0.5})
            if iq.try_admit("A"):
                admitted += 1
        assert admitted == 5

    def test_unused_quota_does_not_bank(self):
        iq = ImplicitQuota(["A"], carry_cap=1.0)
        iq.new_window({"A": 50.0})
        iq.new_window({"A": 0.0})
        # At most the carry cap (plus rounding slack) survives.
        assert iq.budget("A") <= 1.0

    def test_cost_weighted_admission(self):
        # The paper: large requests are multiple small ones.
        iq = ImplicitQuota(["A"])
        iq.new_window({"A": 4.0})
        assert iq.try_admit("A", cost=3.0)
        assert not iq.try_admit("A", cost=3.0)

    def test_rejected_counted(self):
        iq = ImplicitQuota(["A"])
        iq.new_window({"A": 0.0})
        iq.try_admit("A")
        assert iq.rejected["A"] == 1

    def test_unknown_principal(self):
        iq = ImplicitQuota(["A"])
        with pytest.raises(KeyError):
            iq.try_admit("Z")

    def test_bad_cost(self):
        iq = ImplicitQuota(["A"])
        with pytest.raises(ValueError):
            iq.try_admit("A", cost=0.0)

    def test_long_run_rate_matches_quota(self):
        # Residual-carrying rounding hits the aggregate target.
        iq = ImplicitQuota(["A"])
        admitted = 0
        for _ in range(100):
            iq.new_window({"A": 2.3})
            while iq.try_admit("A"):
                admitted += 1
        assert admitted == pytest.approx(230, abs=1)
