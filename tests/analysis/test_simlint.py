"""simlint rule fixtures: positive, negative, and suppression per rule."""

from pathlib import Path

from repro.analysis.simlint import RULES, lint_paths, lint_source

SIM_PATH = "src/repro/sim/example.py"          # SIM001 applies
BENCH_PATH = "benchmarks/bench_example.py"     # SIM001 exempt
EXP_PATH = "src/repro/experiments/example.py"  # SIM005 threading applies
PAR_PATH = "src/repro/experiments/parallel.py"  # SIM005 globals apply


def codes(source, path=SIM_PATH):
    return [v.code for v in lint_source(source, path=path)]


class TestRuleTable:
    def test_all_rules_registered(self):
        assert sorted(RULES) == [
            "SIM001", "SIM002", "SIM003", "SIM004", "SIM005", "SIM006",
            "SIM007", "SIM008", "SIM009", "SIM010", "SIM011",
        ]

    def test_violation_format(self):
        (v,) = lint_source("import time\nt = time.time()\n", path=SIM_PATH)
        assert v.format() == f"{SIM_PATH}:2:4: SIM001 " + v.message
        assert "sim.now" in v.message


class TestSIM001WallClock:
    def test_time_time_flagged(self):
        assert codes("import time\nt = time.time()\n") == ["SIM001"]

    def test_monotonic_and_perf_counter_flagged(self):
        src = "import time\na = time.monotonic()\nb = time.perf_counter()\n"
        assert codes(src) == ["SIM001", "SIM001"]

    def test_aliased_import_resolved(self):
        assert codes("import time as t\nx = t.time()\n") == ["SIM001"]

    def test_from_import_flagged_at_import_and_use(self):
        src = "from time import perf_counter\nx = perf_counter()\n"
        assert codes(src) == ["SIM001", "SIM001"]

    def test_datetime_now_flagged(self):
        src = "import datetime\nd = datetime.datetime.now()\n"
        assert codes(src) == ["SIM001"]

    def test_benchmarks_exempt(self):
        assert codes("import time\nt = time.time()\n", path=BENCH_PATH) == []

    def test_sim_now_not_flagged(self):
        assert codes("def f(sim):\n    return sim.now\n") == []

    def test_time_sleep_not_flagged(self):
        # sleep does not *read* a clock; the simulator never calls it but
        # it is not a determinism hazard per se.
        assert codes("import time\ntime.sleep(0.1)\n") == []

    def test_suppression(self):
        src = "import time\nt = time.time()  # simlint: disable=SIM001\n"
        assert codes(src) == []


class TestSIM002Rng:
    def test_import_random_flagged(self):
        assert codes("import random\n") == ["SIM002"]

    def test_from_random_import_flagged(self):
        assert codes("from random import shuffle\n") == ["SIM002"]

    def test_random_attribute_flagged(self):
        src = "import random  # simlint: disable=SIM002\nx = random.random()\n"
        assert codes(src) == ["SIM002"]

    def test_unseeded_default_rng_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert codes(src) == ["SIM002"]

    def test_seeded_default_rng_ok(self):
        assert codes("import numpy as np\nrng = np.random.default_rng(42)\n") == []

    def test_generator_construction_ok(self):
        src = (
            "import numpy as np\n"
            "g = np.random.Generator(np.random.Philox(np.random.SeedSequence(1)))\n"
        )
        assert codes(src) == []

    def test_suppression(self):
        assert codes("import random  # simlint: disable=SIM002\n") == []


class TestSIM006NumpyGlobalState:
    def test_np_random_rand_flagged(self):
        assert codes("import numpy as np\nx = np.random.rand(3)\n") == ["SIM006"]

    def test_np_random_seed_flagged(self):
        assert codes("import numpy as np\nnp.random.seed(0)\n") == ["SIM006"]

    def test_full_numpy_spelling_flagged(self):
        src = "import numpy\nx = numpy.random.uniform(0, 1)\n"
        assert codes(src) == ["SIM006"]

    def test_unimported_np_convention_flagged(self):
        # np. is resolved by convention even without the import in scope
        # (fixture snippets, doctest fragments).
        assert codes("x = np.random.shuffle(xs)\n") == ["SIM006"]

    def test_seeded_default_rng_not_sim006(self):
        # Construction through the accepted entry points is SIM002's
        # business (and only when unseeded), never SIM006.
        assert codes("import numpy as np\nrng = np.random.default_rng(7)\n") == []

    def test_spawned_generator_draws_ok(self):
        src = ("import numpy as np\n"
               "rng = np.random.default_rng(7)\n"
               "gaps = rng.exponential(1.0, 4096)\n")
        assert codes(src) == []

    def test_suppression(self):
        src = ("import numpy as np\n"
               "np.random.seed(0)  # simlint: disable=SIM006\n")
        assert codes(src) == []


class TestSIM003SetIteration:
    def test_for_over_set_literal_flagged(self):
        assert codes("for x in {1, 2, 3}:\n    pass\n") == ["SIM003"]

    def test_for_over_set_call_flagged(self):
        assert codes("for x in set([3, 1]):\n    pass\n") == ["SIM003"]

    def test_for_over_tracked_name_flagged(self):
        src = "s = {1, 2}\nfor x in s:\n    pass\n"
        assert codes(src) == ["SIM003"]

    def test_set_operator_flagged(self):
        src = "a = {1}\nb = {2}\nfor x in a | b:\n    pass\n"
        assert codes(src) == ["SIM003"]

    def test_comprehension_over_set_flagged(self):
        assert codes("xs = [x for x in {1, 2}]\n") == ["SIM003"]

    def test_annotation_tracks_setness(self):
        src = "def f(items):\n    s: set = items\n    return [x for x in s]\n"
        assert codes(src) == ["SIM003"]

    def test_sorted_set_ok(self):
        assert codes("for x in sorted({3, 1}):\n    pass\n") == []

    def test_list_iteration_ok(self):
        assert codes("xs = [1, 2]\nfor x in xs:\n    pass\n") == []

    def test_set_comp_from_set_ok(self):
        # set -> set is order-free; only ordered sinks need sorting.
        assert codes("s = {1, 2}\nt = {x + 1 for x in s}\n") == []

    def test_reassignment_clears_setness(self):
        src = "s = {1}\ns = sorted(s)\nfor x in s:\n    pass\n"
        assert codes(src) == []

    def test_suppression(self):
        src = "for x in {1, 2}:  # simlint: disable=SIM003\n    pass\n"
        assert codes(src) == []


class TestSIM004HeapTieBreaker:
    def test_bare_two_tuple_flagged(self):
        src = (
            "import heapq\nh = []\n"
            "heapq.heappush(h, (1.0, object()))\n"
        )
        assert codes(src) == ["SIM004"]

    def test_from_import_two_tuple_flagged(self):
        src = (
            "from heapq import heappush\nh = []\n"
            "heappush(h, (1.0, 'payload'))\n"
        )
        assert codes(src) == ["SIM004"]

    def test_three_tuple_with_seq_ok(self):
        src = (
            "import heapq\nh = []\nseq = 0\n"
            "heapq.heappush(h, (1.0, seq, object()))\n"
        )
        assert codes(src) == []

    def test_scalar_entry_ok(self):
        assert codes("import heapq\nh = []\nheapq.heappush(h, 1.0)\n") == []

    def test_suppression(self):
        src = (
            "import heapq\nh = []\n"
            "heapq.heappush(h, (1.0, 2))  # simlint: disable=SIM004\n"
        )
        assert codes(src) == []


class TestSIM005ParallelPayloads:
    def test_threading_import_flagged_in_experiments(self):
        assert codes("import threading\n", path=EXP_PATH) == ["SIM005"]

    def test_threading_use_flagged_in_experiments(self):
        src = ("import threading  # simlint: disable=SIM005\n"
               "lock = threading.Lock()\n")
        assert codes(src, path=EXP_PATH) == ["SIM005"]

    def test_threading_elsewhere_ok(self):
        assert codes("import threading\n", path=SIM_PATH) == []

    def test_global_in_parallel_module_flagged(self):
        src = "state = {}\ndef worker():\n    global state\n    state['x'] = 1\n"
        assert codes(src, path=PAR_PATH) == ["SIM005"]

    def test_global_elsewhere_ok(self):
        src = "state = {}\ndef worker():\n    global state\n    state['x'] = 1\n"
        assert codes(src, path=EXP_PATH) == []

    def test_suppression(self):
        assert codes("import threading  # simlint: disable=SIM005\n",
                     path=EXP_PATH) == []


class TestSIM007ShardSafety:
    def test_os_cpu_count_flagged(self):
        src = "import os\ndef plan():\n    return os.cpu_count()\n"
        assert codes(src) == ["SIM007"]

    def test_multiprocessing_cpu_count_flagged(self):
        src = ("import multiprocessing\n"
               "def plan():\n    return multiprocessing.cpu_count()\n")
        assert codes(src) == ["SIM007"]

    def test_from_import_cpu_count_flagged(self):
        src = "from os import cpu_count\ndef plan():\n    return cpu_count()\n"
        assert codes(src) == ["SIM007"]

    def test_cpu_count_inside_default_jobs_ok(self):
        src = ("import os\n"
               "def default_jobs():\n"
               "    return max(1, os.cpu_count() or 1)\n")
        assert codes(src, path=PAR_PATH) == []

    def test_cpu_count_in_benchmarks_ok(self):
        src = "import os\ndef plan():\n    return os.cpu_count()\n"
        assert codes(src, path=BENCH_PATH) == []

    def test_sched_getaffinity_ok(self):
        src = ("import os\n"
               "def plan():\n    return len(os.sched_getaffinity(0))\n")
        assert codes(src) == []

    def test_worker_reading_mutable_global_flagged(self):
        src = ("CACHE = {}\n"
               "def _shard_worker_main(conn, task):\n"
               "    return CACHE.get(task)\n")
        assert codes(src) == ["SIM007"]

    def test_task_suffix_flagged(self):
        src = ("RESULTS = []\n"
               "def _figure_task(task):\n"
               "    RESULTS.append(task)\n")
        assert codes(src) == ["SIM007"]

    def test_local_shadow_ok(self):
        src = ("CACHE = {}\n"
               "def _shard_worker_main(conn, task):\n"
               "    CACHE = dict(task)\n"
               "    return CACHE.get(task)\n")
        assert codes(src) == []

    def test_locally_imported_name_ok(self):
        # parallel._figure_task pattern: the registry is imported inside
        # the worker body, never read from module scope.
        src = ("def _figure_task(task):\n"
               "    from repro.experiments.figures import ALL_FIGURES\n"
               "    name, kwargs = task\n"
               "    return name, ALL_FIGURES[name](**kwargs)\n")
        assert codes(src) == []

    def test_immutable_globals_ok(self):
        src = ("LIMIT = 3\n"
               "NAMES = ('a', 'b')\n"
               "def _shard_worker_main(conn, task):\n"
               "    return LIMIT + len(NAMES)\n")
        assert codes(src) == []

    def test_non_worker_function_ok(self):
        src = ("CACHE = {}\n"
               "def main():\n    return CACHE\n"
               "def lookup(k):\n    return CACHE.get(k)\n")
        assert codes(src) == []

    def test_suppression(self):
        src = ("CACHE = {}\n"
               "def _shard_worker_main(conn, task):\n"
               "    return CACHE.get(task)  # simlint: disable=SIM007\n")
        assert codes(src) == []


def project_codes(tmp_path, files):
    """Write a {relpath: source} project and whole-program lint it."""
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
        init = target.parent / "__init__.py"
        if not init.exists():
            init.write_text("")
    return lint_paths([str(tmp_path)])


class TestSIM008LabelCollisions:
    def test_cross_module_collision_flagged_at_both_sites(self, tmp_path):
        vs = project_codes(tmp_path, {
            "pkg/a.py": ("def setup(streams, name):\n"
                         "    return streams.get(f'client:{name}')\n"),
            "pkg/b.py": ("def setup(streams, name):\n"
                         "    return streams.get(f'client:{name}')\n"),
        })
        assert [v.code for v in vs] == ["SIM008", "SIM008"]
        assert {v.path.rsplit("/", 1)[1] for v in vs} == {"a.py", "b.py"}
        assert "client:{}" in vs[0].message

    def test_same_module_reuse_not_flagged(self, tmp_path):
        vs = project_codes(tmp_path, {
            "pkg/a.py": ("def f(streams):\n"
                         "    return streams.get('arrivals')\n"
                         "def g(streams):\n"
                         "    return streams.get('arrivals')\n"),
        })
        assert vs == []

    def test_distinct_shapes_not_flagged(self, tmp_path):
        vs = project_codes(tmp_path, {
            "pkg/a.py": ("def f(streams, n):\n"
                         "    return streams.get(f'client:{n}')\n"),
            "pkg/b.py": ("def f(streams, n):\n"
                         "    return streams.get(f'server:{n}')\n"),
        })
        assert vs == []

    def test_shared_helper_origin_sanctioned(self, tmp_path):
        # Both modules mint the label through one canonical helper: the
        # helper is the audit point, so the sharing is coordination —
        # the protocol/membership link-stream continuation pattern.
        vs = project_codes(tmp_path, {
            "pkg/names.py": ("def link_name(s, d):\n"
                             "    return f'link:{s}->{d}'\n"),
            "pkg/a.py": ("from pkg.names import link_name\n"
                         "def f(streams, s, d):\n"
                         "    return streams.get(link_name(s, d))\n"),
            "pkg/b.py": ("from pkg.names import link_name\n"
                         "def f(streams, s, d):\n"
                         "    return streams.get(link_name(s, d))\n"),
        })
        assert vs == []

    def test_helper_plus_inline_spelling_still_collides(self, tmp_path):
        vs = project_codes(tmp_path, {
            "pkg/names.py": ("def link_name(s, d):\n"
                             "    return f'link:{s}->{d}'\n"),
            "pkg/a.py": ("from pkg.names import link_name\n"
                         "def f(streams, s, d):\n"
                         "    return streams.get(link_name(s, d))\n"),
            "pkg/b.py": ("def f(streams, s, d):\n"
                         "    return streams.get(f'link:{s}->{d}')\n"),
        })
        assert [v.code for v in vs] == ["SIM008", "SIM008"]

    def test_dynamic_label_flagged(self, tmp_path):
        vs = project_codes(tmp_path, {
            "pkg/a.py": ("def f(streams, parts):\n"
                         "    return streams.get('-'.join(parts))\n"),
        })
        assert [v.code for v in vs] == ["SIM008"]
        assert "not statically resolvable" in vs[0].message

    def test_local_variable_label_resolved(self, tmp_path):
        vs = project_codes(tmp_path, {
            "pkg/a.py": ("def f(streams, n):\n"
                         "    label = f'node:{n}'\n"
                         "    return streams.get(label)\n"),
            "pkg/b.py": ("def f(streams, n):\n"
                         "    return streams.get(f'node:{n}')\n"),
        })
        assert [v.code for v in vs] == ["SIM008", "SIM008"]

    def test_dict_get_not_mistaken_for_stream(self, tmp_path):
        vs = project_codes(tmp_path, {
            "pkg/a.py": ("def f(cache, key):\n"
                         "    return cache.get(key, None)\n"),
            "pkg/b.py": ("def f(config):\n"
                         "    return config.get('mode')\n"),
        })
        assert vs == []

    def test_numpy_spawn_int_ignored(self, tmp_path):
        vs = project_codes(tmp_path, {
            "pkg/a.py": ("def f(rng):\n    return rng.spawn(3)\n"),
            "pkg/b.py": ("def f(rng):\n    return rng.spawn(3)\n"),
        })
        assert vs == []

    def test_suppression_applies_to_project_findings(self, tmp_path):
        vs = project_codes(tmp_path, {
            "pkg/a.py": ("def f(streams, n):\n"
                         "    return streams.get(f'x:{n}')"
                         "  # simlint: disable=SIM008\n"),
            "pkg/b.py": ("def f(streams, n):\n"
                         "    return streams.get(f'x:{n}')"
                         "  # simlint: disable=SIM008\n"),
        })
        assert vs == []


class TestSIM009TransitiveImpurity:
    def test_cross_module_impure_helper_flagged(self, tmp_path):
        vs = project_codes(tmp_path, {
            "pkg/state.py": ("CACHE = {}\n"
                             "def lookup(k):\n"
                             "    return CACHE.get(k)\n"),
            "pkg/work.py": ("from pkg.state import lookup\n"
                            "def run_task(task):\n"
                            "    return lookup(task)\n"),
        })
        assert [v.code for v in vs] == ["SIM009"]
        assert "CACHE" in vs[0].message
        assert vs[0].path.endswith("work.py")

    def test_pure_chain_ok(self, tmp_path):
        vs = project_codes(tmp_path, {
            "pkg/helpers.py": ("def double(x):\n    return 2 * x\n"),
            "pkg/work.py": ("from pkg.helpers import double\n"
                            "def run_task(task):\n"
                            "    return double(task)\n"),
        })
        assert vs == []

    def test_two_hop_chain_flagged(self, tmp_path):
        vs = project_codes(tmp_path, {
            "pkg/state.py": ("REGISTRY = []\n"
                             "def record(x):\n"
                             "    REGISTRY.append(x)\n"),
            "pkg/mid.py": ("from pkg.state import record\n"
                           "def log(x):\n    record(x)\n"),
            "pkg/work.py": ("from pkg.mid import log\n"
                            "def run_worker(task):\n"
                            "    log(task)\n"),
        })
        assert [v.code for v in vs] == ["SIM009"]
        assert "log -> record" in vs[0].message

    def test_cycle_terminates_and_flags(self, tmp_path):
        vs = project_codes(tmp_path, {
            "pkg/a.py": ("from pkg.b import pong\n"
                         "STATE = {}\n"
                         "def ping(n):\n"
                         "    return STATE if n == 0 else pong(n - 1)\n"),
            "pkg/b.py": ("from pkg.a import ping\n"
                         "def pong(n):\n    return ping(n)\n"
                         "def run_task(task):\n    return pong(task)\n"),
        })
        assert [v.code for v in vs] == ["SIM009"]

    def test_non_worker_caller_ok(self, tmp_path):
        vs = project_codes(tmp_path, {
            "pkg/state.py": ("CACHE = {}\n"
                             "def lookup(k):\n    return CACHE.get(k)\n"),
            "pkg/work.py": ("from pkg.state import lookup\n"
                            "def query(k):\n    return lookup(k)\n"),
        })
        assert vs == []

    def test_direct_read_is_sim007_not_sim009(self, tmp_path):
        vs = project_codes(tmp_path, {
            "pkg/work.py": ("CACHE = {}\n"
                            "def run_task(task):\n"
                            "    return CACHE.get(task)\n"),
        })
        assert [v.code for v in vs] == ["SIM007"]

    def test_suppression_at_call_site(self, tmp_path):
        vs = project_codes(tmp_path, {
            "pkg/state.py": ("CACHE = {}\n"
                             "def lookup(k):\n    return CACHE.get(k)\n"),
            "pkg/work.py": ("from pkg.state import lookup\n"
                            "def run_task(task):\n"
                            "    return lookup(task)"
                            "  # simlint: disable=SIM009\n"),
        })
        assert vs == []


STATS_PATH = "src/repro/analysis/stats.py"  # digest-sink module


class TestSIM010OrderSensitiveReductions:
    def test_sum_over_set_flagged(self):
        assert codes("total = sum({0.1, 0.2, 0.3})\n") == ["SIM010"]

    def test_sum_over_tracked_set_name_flagged(self):
        src = "xs = {0.1, 0.2}\ntotal = sum(xs)\n"
        assert codes(src) == ["SIM010"]

    def test_min_max_over_set_flagged(self):
        src = "lo = min({1.5, 2.5})\nhi = max({1.5, 2.5})\n"
        assert codes(src) == ["SIM010", "SIM010"]

    def test_sum_over_list_ok(self):
        assert codes("total = sum([0.1, 0.2])\n") == []

    def test_sum_over_sorted_set_ok(self):
        assert codes("total = sum(sorted({0.1, 0.2}))\n") == []

    def test_fsum_exempt(self):
        src = "import math\ntotal = math.fsum({0.1, 0.2})\n"
        assert codes(src) == []

    def test_dict_values_flagged_in_digest_sink(self):
        src = "def digest(d):\n    return sum(d.values())\n"
        assert codes(src, path=STATS_PATH) == ["SIM010"]

    def test_dict_values_ok_outside_digest_sink(self):
        src = "def total(d):\n    return sum(d.values())\n"
        assert codes(src) == []

    def test_suppression(self):
        src = "total = sum({0.1, 0.2})  # simlint: disable=SIM010\n"
        assert codes(src) == []


class TestSIM011TieBreakers:
    def test_keyed_sort_over_set_flagged(self):
        src = ("names = {'b', 'a'}\n"
               "out = sorted(names, key=len)\n")
        assert codes(src) == ["SIM011"]

    def test_keyed_sort_over_list_ok(self):
        assert codes("out = sorted(['b', 'a'], key=len)\n") == []

    def test_unkeyed_sort_over_set_ok(self):
        # Total order over the elements themselves: no tie hazard.
        assert codes("out = sorted({'b', 'a'})\n") == []

    def test_nsmallest_over_set_flagged(self):
        src = ("import heapq\n"
               "xs = {3, 1, 2}\n"
               "out = heapq.nsmallest(2, xs, key=abs)\n")
        assert codes(src) == ["SIM011"]

    def test_heap_triple_without_seq_flagged(self):
        src = ("import heapq\nh = []\n"
               "heapq.heappush(h, (1.0, 'payload', object()))\n")
        assert codes(src) == ["SIM011"]

    def test_heap_triple_with_seq_ok(self):
        src = ("import heapq\nh = []\nseq = 7\n"
               "heapq.heappush(h, (1.0, seq, object()))\n")
        assert codes(src) == []

    def test_heap_triple_with_next_counter_ok(self):
        src = ("import heapq, itertools\nh = []\nc = itertools.count()\n"
               "heapq.heappush(h, (1.0, next(c), object()))\n")
        assert codes(src) == []

    def test_suppression(self):
        src = ("xs = {1, 2}\n"
               "out = sorted(xs, key=abs)  # simlint: disable=SIM011\n")
        assert codes(src) == []


class TestSuppressionSyntax:
    def test_bare_disable_suppresses_all(self):
        src = "import time, random\nt = time.time(); x = random.random()  # simlint: disable\n"
        assert codes(src) == ["SIM002"]  # only the import line still flags

    def test_multi_code_disable(self):
        src = ("import time  # simlint: disable=SIM002\n"
               "t = time.time()  # simlint: disable=SIM001, SIM003\n")
        assert codes(src) == []

    def test_wrong_code_does_not_suppress(self):
        src = "import time\nt = time.time()  # simlint: disable=SIM003\n"
        assert codes(src) == ["SIM001"]


class TestRepoIsClean:
    def test_src_repro_lints_clean(self):
        pkg = Path(__file__).resolve().parents[2] / "src" / "repro"
        violations = lint_paths([str(pkg)])
        assert violations == [], "\n".join(v.format() for v in violations)
