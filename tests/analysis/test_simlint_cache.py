"""Engine-level tests: incremental cache, baselines, formats, exit codes."""

import io
import json

import pytest

from repro.analysis.simlint import (
    Baseline,
    LintCache,
    format_json,
    format_sarif,
    format_text,
    lint_project,
    run,
)
from repro.analysis.simlint.cache import cache_version, content_hash

DIRTY = "import time\nt = time.time()\n"          # one SIM001 finding
CLEAN = "def f(sim):\n    return sim.now\n"


def write_project(tmp_path, files):
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    return [str(tmp_path / rel) for rel in files]


class TestCache:
    def test_warm_run_parses_nothing(self, tmp_path):
        paths = write_project(tmp_path, {"a.py": CLEAN, "b.py": CLEAN})
        cache_file = str(tmp_path / "cache.json")

        cache = LintCache(cache_file)
        cold = lint_project(paths, cache=cache)
        cache.save()
        assert (cold.parsed, cold.cache_hits) == (2, 0)

        warm_cache = LintCache(cache_file)
        warm = lint_project(paths, cache=warm_cache)
        assert (warm.parsed, warm.cache_hits) == (0, 2)
        assert warm.violations == cold.violations

    def test_edit_invalidates_only_the_changed_file(self, tmp_path):
        paths = write_project(tmp_path, {"a.py": CLEAN, "b.py": CLEAN})
        cache_file = str(tmp_path / "cache.json")
        cache = LintCache(cache_file)
        lint_project(paths, cache=cache)
        cache.save()

        (tmp_path / "b.py").write_text(DIRTY)
        warm = lint_project(paths, cache=LintCache(cache_file))
        assert (warm.parsed, warm.cache_hits) == (1, 1)
        assert [v.code for v in warm.violations] == ["SIM001"]

    def test_version_mismatch_degrades_to_cold(self, tmp_path):
        paths = write_project(tmp_path, {"a.py": CLEAN})
        cache_file = str(tmp_path / "cache.json")
        cache = LintCache(cache_file)
        lint_project(paths, cache=cache)
        cache.save()

        data = json.loads((tmp_path / "cache.json").read_text())
        data["version"] = "0:stale"
        (tmp_path / "cache.json").write_text(json.dumps(data))
        warm = lint_project(paths, cache=LintCache(cache_file))
        assert (warm.parsed, warm.cache_hits) == (1, 0)

    def test_corrupt_cache_degrades_to_cold(self, tmp_path):
        paths = write_project(tmp_path, {"a.py": CLEAN})
        cache_file = tmp_path / "cache.json"
        cache_file.write_text("{not json")
        report = lint_project(paths, cache=LintCache(str(cache_file)))
        assert (report.parsed, report.cache_hits) == (1, 0)

    def test_version_mixes_rule_table(self):
        assert cache_version().startswith("1:")
        assert content_hash(b"x") != content_hash(b"y")

    def test_parallel_jobs_match_serial(self, tmp_path):
        files = {f"m{i}.py": (DIRTY if i % 3 == 0 else CLEAN)
                 for i in range(9)}
        paths = write_project(tmp_path, files)
        serial = lint_project(paths, jobs=1)
        parallel = lint_project(paths, jobs=4)
        assert serial.violations == parallel.violations


class TestBaseline:
    def test_round_trip_and_filter(self, tmp_path):
        (path,) = write_project(tmp_path, {"a.py": DIRTY})
        report = lint_project([path])
        assert len(report.violations) == 1

        base = Baseline().rebuild(report.violations, report.sources)
        base_path = str(tmp_path / "base.json")
        base.save(base_path)
        loaded = Baseline.load(base_path)
        assert len(loaded) == 1
        assert loaded.rationales_missing()  # TODO stub seeded

        kept, matched = loaded.filter(report.violations, report.sources)
        assert (kept, matched) == ([], 1)

    def test_fingerprint_survives_line_moves(self, tmp_path):
        (path,) = write_project(tmp_path, {"a.py": DIRTY})
        report = lint_project([path])
        base = Baseline().rebuild(report.violations, report.sources)

        (tmp_path / "a.py").write_text("# a comment\n" + DIRTY)
        moved = lint_project([path])
        kept, matched = base.filter(moved.violations, moved.sources)
        assert (kept, matched) == ([], 1)

    def test_new_finding_not_eaten(self, tmp_path):
        (path,) = write_project(tmp_path, {"a.py": DIRTY})
        report = lint_project([path])
        base = Baseline().rebuild(report.violations, report.sources)

        (tmp_path / "a.py").write_text(DIRTY + "u = time.monotonic()\n")
        grown = lint_project([path])
        kept, matched = base.filter(grown.violations, grown.sources)
        assert matched == 1
        assert [v.line for v in kept] == [3]

    def test_rebuild_preserves_rationales(self, tmp_path):
        (path,) = write_project(tmp_path, {"a.py": DIRTY})
        report = lint_project([path])
        base = Baseline().rebuild(report.violations, report.sources)
        fp = next(iter(base.entries))
        base.entries[fp] = (1, "boot wall-clock is pre-simulation")

        again = base.rebuild(report.violations, report.sources)
        assert again.entries[fp][1] == "boot wall-clock is pre-simulation"
        assert again.rationales_missing() == []

    def test_missing_file_is_empty(self, tmp_path):
        assert len(Baseline.load(str(tmp_path / "none.json"))) == 0

    def test_malformed_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"entries": "nope"}')
        with pytest.raises(ValueError):
            Baseline.load(str(bad))


class TestFormats:
    def violations(self, tmp_path):
        (path,) = write_project(tmp_path, {"a.py": DIRTY})
        return lint_project([path]).violations

    def test_text(self, tmp_path):
        text = format_text(self.violations(tmp_path))
        assert "SIM001" in text and "1 violation(s)" in text
        assert format_text([]) == "simlint: clean"

    def test_json(self, tmp_path):
        payload = json.loads(format_json(self.violations(tmp_path)))
        assert payload[0]["code"] == "SIM001"
        assert payload[0]["line"] == 2

    def test_sarif(self, tmp_path):
        doc = json.loads(format_sarif(self.violations(tmp_path)))
        assert doc["version"] == "2.1.0"
        (sarif_run,) = doc["runs"]
        rules = sarif_run["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules][:2] == ["SIM001", "SIM002"]
        (result,) = sarif_run["results"]
        assert result["ruleId"] == "SIM001"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region == {"startLine": 2, "startColumn": 5}


class TestRunExitCodes:
    def test_clean_exits_zero(self, tmp_path):
        paths = write_project(tmp_path, {"a.py": CLEAN})
        out = io.StringIO()
        assert run(paths, stream=out) == 0
        assert "clean" in out.getvalue()

    def test_findings_exit_one(self, tmp_path):
        paths = write_project(tmp_path, {"a.py": DIRTY})
        assert run(paths, stream=io.StringIO()) == 1

    def test_usage_errors_raise_for_exit_two(self, tmp_path):
        with pytest.raises(ValueError):
            run([str(tmp_path / "missing.py")], stream=io.StringIO())
        paths = write_project(tmp_path, {"a.py": CLEAN})
        with pytest.raises(ValueError):
            run(paths, fmt="xml", stream=io.StringIO())

    def test_baseline_flow_exits_zero(self, tmp_path):
        paths = write_project(tmp_path, {"a.py": DIRTY})
        base = str(tmp_path / "base.json")
        out = io.StringIO()
        assert run(paths, baseline_path=base, update_baseline=True,
                   stream=out) == 0
        assert run(paths, baseline_path=base, stream=io.StringIO()) == 0

    def test_output_file(self, tmp_path):
        paths = write_project(tmp_path, {"a.py": DIRTY})
        target = tmp_path / "findings.sarif"
        code = run(paths, fmt="sarif", output=str(target),
                   stream=io.StringIO())
        assert code == 1
        doc = json.loads(target.read_text())
        assert doc["runs"][0]["results"]

    def test_cli_main_maps_usage_errors_to_two(self, tmp_path):
        from repro import cli

        paths = write_project(tmp_path, {"a.py": CLEAN, "b.py": DIRTY})
        assert cli.main(["lint", paths[0], "--no-cache"]) == 0
        assert cli.main(["lint", paths[1], "--no-cache"]) == 1
        assert cli.main(["lint", str(tmp_path / "gone.py"),
                         "--no-cache"]) == 2
