"""InvariantChecker: each ledger check, its violation path, and wiring."""

import pytest

from repro.analysis.invariants import (
    InvariantChecker, InvariantViolation, check_enabled,
)
from repro.core.agreements import Agreement, AgreementGraph
from repro.core.tickets import Currency, Ticket, TicketKind
from repro.cluster.server import Server
from repro.experiments.harness import Scenario
from repro.lp import solver as lp_solver
from repro.lp.model import Model, Status
from repro.sim.engine import Simulator


class TestTicketConservation:
    def test_clean_graph_passes(self, fig6_graph):
        chk = InvariantChecker()
        chk.check_ticket_conservation(fig6_graph)
        assert chk.summary() == {"checks_run": 1, "violations": 0}

    def test_over_granted_graph_fails(self):
        # add_agreement guards the budget at construction; mutate the
        # ledger behind it (the bug class the checker exists for).
        g = AgreementGraph()
        g.add_principal("S", capacity=100.0)
        g.add_principal("A")
        g.add_principal("B")
        g.add_agreement(Agreement("S", "A", 0.7, 1.0))
        g._agreements[("S", "B")] = Agreement("S", "B", 0.7, 1.0)  # Σ lb = 1.4
        chk = InvariantChecker()
        with pytest.raises(InvariantViolation, match="granted 1.4"):
            chk.check_ticket_conservation(g)

    def test_currency_bypass_is_caught(self):
        # Currency.issue() guards the budget; mutate the ledger behind it
        # (what a deserialisation or renegotiation bug would do) and the
        # checker must still notice.
        cur = Currency("S", face_value=100.0)
        cur.issue(TicketKind.MANDATORY, "A", 60.0)
        cur.issued.append(
            Ticket(kind=TicketKind.MANDATORY, issuer="S", holder="B", amount=60.0)
        )
        chk = InvariantChecker()
        with pytest.raises(InvariantViolation, match="mandatory issuance"):
            chk.check_ticket_conservation([cur])

    def test_clean_currencies_pass(self):
        cur = Currency("S")
        cur.issue(TicketKind.MANDATORY, "A", 40.0)
        cur.issue(TicketKind.OPTIONAL, "B", 90.0)  # optional is unbounded
        chk = InvariantChecker()
        chk.check_ticket_conservation([cur])
        assert chk.violations == []

    def test_non_strict_records_instead_of_raising(self):
        cur = Currency("S")
        cur.issued.append(
            Ticket(kind=TicketKind.MANDATORY, issuer="S", holder="B", amount=150.0)
        )
        chk = InvariantChecker(strict=False)
        chk.check_ticket_conservation([cur])
        assert len(chk.violations) == 1


class TestAllocationCheck:
    def test_clean_allocation_passes(self):
        chk = InvariantChecker()
        chk.check_allocation({"A": 5.0, "B": 3.0}, {"A": 10.0, "B": 3.0}, 32.0)
        assert chk.checks_run == 1

    def test_negative_quota_fails(self):
        chk = InvariantChecker()
        with pytest.raises(InvariantViolation, match="negative quota"):
            chk.check_allocation({"A": -1.0}, {"A": 10.0}, 32.0)

    def test_quota_above_demand_fails(self):
        chk = InvariantChecker()
        with pytest.raises(InvariantViolation, match="exceeds"):
            chk.check_allocation({"A": 12.0}, {"A": 10.0}, 32.0)

    def test_total_above_capacity_fails(self):
        chk = InvariantChecker()
        with pytest.raises(InvariantViolation, match="community"):
            chk.check_allocation(
                {"A": 20.0, "B": 20.0}, {"A": 25.0, "B": 25.0}, 32.0
            )


class TestServerWatch:
    def test_overdrawn_server_fails(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=10.0, owner="S")
        chk = InvariantChecker()
        chk.watch_server(sim, srv, window=1.0)
        # 10 req/s x 1 s window allows ~10 units (+ max_cost slack);
        # claim 100 completed units, as a double-counting bug would.
        for _ in range(100):
            chk.observe_completion("S", 1.0)
        with pytest.raises(InvariantViolation, match="request-units"):
            sim.run(until=1.5)

    def test_normal_service_passes(self, fig6_graph):
        sc = Scenario(fig6_graph, seed=1, check_invariants=True)
        srv = sc.server("S", "S", 320.0)
        r1 = sc.l7("R1", {"S": srv})
        sc.client("C1", "A", r1, rate=50.0)
        sc.run(3.0)
        assert sc.invariants is not None
        assert sc.invariants.checks_run > 0
        assert sc.invariants.violations == []


class TestNatConntrack:
    class _Stub:
        name = "SW"

        def __init__(self, nat, flows):
            self.nat = list(range(nat))
            self.conntrack = list(range(flows))

    def test_balanced_passes(self):
        chk = InvariantChecker()
        chk.check_nat_conntrack(self._Stub(3, 3))
        assert chk.checks_run == 1

    def test_leak_fails(self):
        chk = InvariantChecker()
        with pytest.raises(InvariantViolation, match="NAT entries"):
            chk.check_nat_conntrack(self._Stub(4, 3))


class TestLpFeasibility:
    def _model(self):
        m = Model("toy")
        x = m.var("x", 0.0, 10.0)
        y = m.var("y", 0.0, 10.0)
        m.add(x + y <= 8.0)
        m.maximize(x + y)
        return m

    def test_true_optimum_passes(self):
        m = self._model()
        sol = lp_solver.solve(m)
        chk = InvariantChecker()
        chk.check_lp_solution(m, sol)
        assert chk.checks_run == 1

    def test_tampered_solution_fails(self):
        import numpy as np

        m = self._model()
        fake = m.solution_from_x(np.array([6.0, 6.0]), Status.OPTIMAL)
        chk = InvariantChecker()
        with pytest.raises(InvariantViolation, match="inequality row"):
            chk.check_lp_solution(m, fake)

    def test_out_of_bounds_solution_fails(self):
        import numpy as np

        m = self._model()
        fake = m.solution_from_x(np.array([-3.0, 5.0]), Status.OPTIMAL)
        chk = InvariantChecker()
        with pytest.raises(InvariantViolation, match="outside"):
            chk.check_lp_solution(m, fake)

    def test_infeasible_status_passes_through(self):
        m = self._model()

        class _Sol:
            optimal = False
            x = None

        chk = InvariantChecker()
        chk.check_lp_solution(m, _Sol())
        assert chk.violations == []

    def test_solver_hook_is_called(self):
        calls = []
        lp_solver.set_feasibility_check(lambda m, s: calls.append((m, s)))
        try:
            lp_solver.solve(self._model())
        finally:
            lp_solver.set_feasibility_check(None)
        assert len(calls) == 1


class TestWiring:
    def test_env_toggle(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        assert check_enabled() is False
        assert check_enabled(default=True) is True
        monkeypatch.setenv("REPRO_CHECK", "1")
        assert check_enabled() is True
        monkeypatch.setenv("REPRO_CHECK", "off")
        assert check_enabled() is False

    def test_scenario_off_by_default(self, fig6_graph, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        assert Scenario(fig6_graph).invariants is None

    def test_scenario_env_enables(self, fig6_graph, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        assert Scenario(fig6_graph).invariants is not None

    def test_explicit_flag_beats_env(self, fig6_graph, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        assert Scenario(fig6_graph, check_invariants=False).invariants is None
