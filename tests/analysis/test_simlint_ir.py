"""Project-IR unit tests: module naming, fact round-trips, label shapes,
call-graph resolution and the bounded transitive closure."""

import ast

from repro.analysis.simlint.ir import (
    MAX_CLOSURE_DEPTH,
    ModuleFacts,
    ProjectIR,
    collect_facts,
    module_name_for,
)


def build_ir(tmp_path, files):
    """Write {relpath: source} (with package __init__s) and assemble IR."""
    facts = []
    for rel, source in files.items():
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
        init = target.parent / "__init__.py"
        if not init.exists():
            init.write_text("")
    for rel in files:
        path = str(tmp_path / rel)
        tree = ast.parse(files[rel], filename=path)
        facts.append(collect_facts(tree, path))
    return ProjectIR(facts)


class TestModuleNames:
    def test_package_walk(self, tmp_path):
        (tmp_path / "pkg" / "sub").mkdir(parents=True)
        (tmp_path / "pkg" / "__init__.py").write_text("")
        (tmp_path / "pkg" / "sub" / "__init__.py").write_text("")
        mod = tmp_path / "pkg" / "sub" / "m.py"
        mod.write_text("")
        assert module_name_for(str(mod)) == "pkg.sub.m"

    def test_init_is_the_package(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        init = tmp_path / "pkg" / "__init__.py"
        init.write_text("")
        assert module_name_for(str(init)) == "pkg"

    def test_bare_script_keeps_stem(self, tmp_path):
        script = tmp_path / "tool.py"
        script.write_text("")
        assert module_name_for(str(script)) == "tool"


class TestFactsRoundTrip:
    def test_json_round_trip_preserves_everything(self, tmp_path):
        source = (
            "import numpy as np\n"
            "from collections import deque\n"
            "CACHE = {}\n"
            "def link_name(s, d):\n"
            "    return f'link:{s}->{d}'\n"
            "def run_task(streams, s, d):\n"
            "    x = CACHE\n"
            "    return streams.get(link_name(s, d))"
            "  # simlint: disable=SIM009\n"
        )
        path = str(tmp_path / "m.py")
        (tmp_path / "m.py").write_text(source)
        facts = collect_facts(
            ast.parse(source, filename=path), path,
            suppressions={8: {"SIM009"}},
        )
        clone = ModuleFacts.from_dict(facts.to_dict())
        assert clone.to_dict() == facts.to_dict()
        assert clone.mutable_globals == ["CACHE"]
        assert clone.str_returns == {"link_name": "link:{}->{}"}
        assert clone.functions["run_task"].impure_reads[0][0] == "CACHE"
        assert clone.suppressions == {8: {"SIM009"}}


class TestLabelShapes:
    def shapes(self, tmp_path, body):
        ir = build_ir(tmp_path, {"pkg/m.py": body})
        facts = ir.modules[0]
        return [ir.resolve_label_shape(facts, u) for u in facts.labels]

    def test_fstring_fields_unify(self, tmp_path):
        body = "def f(streams, a, b):\n    return streams.get(f'x:{a}:{b}')\n"
        assert self.shapes(tmp_path, body) == ["x:{}:{}"]

    def test_concatenation_folds(self, tmp_path):
        body = "def f(streams, n):\n    return streams.get('c:' + str(n))\n"
        assert self.shapes(tmp_path, body) == ["c:{}"]

    def test_str_format_normalises(self, tmp_path):
        body = ("def f(streams, n):\n"
                "    return streams.get('node:{idx}'.format(idx=n))\n")
        assert self.shapes(tmp_path, body) == ["node:{}"]

    def test_helper_return_resolved_across_modules(self, tmp_path):
        ir = build_ir(tmp_path, {
            "pkg/names.py": ("def link_name(s, d):\n"
                             "    return f'link:{s}->{d}'\n"),
            "pkg/use.py": ("from pkg.names import link_name\n"
                           "def f(streams, s, d):\n"
                           "    return streams.get(link_name(s, d))\n"),
        })
        use_facts = next(m for m in ir.modules if m.path.endswith("use.py"))
        (use,) = use_facts.labels
        shape, origin = ir.resolve_label(use_facts, use)
        assert shape == "link:{}->{}"
        assert origin == "pkg.names:link_name"

    def test_inconsistent_helper_returns_stay_dynamic(self, tmp_path):
        ir = build_ir(tmp_path, {
            "pkg/m.py": ("def pick(flag):\n"
                         "    if flag:\n        return 'a'\n"
                         "    return 'b'\n"
                         "def f(streams, flag):\n"
                         "    return streams.get(pick(flag))\n"),
        })
        facts = ir.modules[0]
        (use,) = facts.labels
        assert ir.resolve_label_shape(facts, use) is None


class TestCallResolution:
    def test_from_import_with_alias(self, tmp_path):
        ir = build_ir(tmp_path, {
            "pkg/a.py": "def helper(x):\n    return x\n",
            "pkg/b.py": ("from pkg.a import helper as h\n"
                         "def f(x):\n    return h(x)\n"),
        })
        facts = next(m for m in ir.modules if m.path.endswith("b.py"))
        fn = facts.functions["f"]
        assert ir.resolve_call(facts, fn, "h") == "pkg.a:helper"

    def test_module_alias_attribute_call(self, tmp_path):
        ir = build_ir(tmp_path, {
            "pkg/a.py": "def helper(x):\n    return x\n",
            "pkg/b.py": ("import pkg.a as util\n"
                         "def f(x):\n    return util.helper(x)\n"),
        })
        facts = next(m for m in ir.modules if m.path.endswith("b.py"))
        fn = facts.functions["f"]
        assert ir.resolve_call(facts, fn, "util.helper") == "pkg.a:helper"

    def test_self_method_resolves_in_class(self, tmp_path):
        ir = build_ir(tmp_path, {
            "pkg/a.py": ("class C:\n"
                         "    def step(self):\n        return self.tick()\n"
                         "    def tick(self):\n        return 1\n"),
        })
        facts = ir.modules[0]
        fn = facts.functions["C.step"]
        assert ir.resolve_call(facts, fn, "self.tick") == "pkg.a:C.tick"

    def test_constructor_resolves_to_init(self, tmp_path):
        ir = build_ir(tmp_path, {
            "pkg/a.py": ("class World:\n"
                         "    def __init__(self, task):\n"
                         "        self.task = task\n"),
            "pkg/b.py": ("from pkg.a import World\n"
                         "def f(task):\n    return World(task)\n"),
        })
        facts = next(m for m in ir.modules if m.path.endswith("b.py"))
        fn = facts.functions["f"]
        assert ir.resolve_call(facts, fn, "World") == "pkg.a:World.__init__"

    def test_unresolvable_registry_call(self, tmp_path):
        ir = build_ir(tmp_path, {
            "pkg/a.py": ("TABLE = {}\n"
                         "def f(name):\n    return TABLE[name]()\n"),
        })
        facts = ir.modules[0]
        fn = facts.functions["f"]
        # Subscripted callee is never recorded as a resolvable spelling.
        assert all("TABLE" not in c.name for c in fn.calls)


class TestClosure:
    def test_cycle_terminates(self, tmp_path):
        ir = build_ir(tmp_path, {
            "pkg/a.py": ("from pkg.b import pong\n"
                         "def ping(n):\n    return pong(n)\n"),
            "pkg/b.py": ("from pkg.a import ping\n"
                         "def pong(n):\n    return ping(n)\n"),
        })
        chains = ir.reachable("pkg.a:ping")
        # The cycle folds back to the (visited) start and terminates.
        assert set(chains) == {"pkg.b:pong"}

    def test_depth_bound_respected(self, tmp_path):
        links = "\n".join(
            f"def f{i}(x):\n    return f{i + 1}(x)" for i in range(6)
        ) + "\ndef f6(x):\n    return x\n"
        ir = build_ir(tmp_path, {"pkg/chain.py": links})
        shallow = ir.reachable("pkg.chain:f0", max_depth=2)
        assert set(shallow) == {"pkg.chain:f1", "pkg.chain:f2"}
        deep = ir.reachable("pkg.chain:f0", max_depth=MAX_CLOSURE_DEPTH)
        assert "pkg.chain:f6" in deep

    def test_chain_records_call_sites(self, tmp_path):
        ir = build_ir(tmp_path, {
            "pkg/a.py": ("from pkg.b import mid\n"
                         "def top(x):\n    return mid(x)\n"),
            "pkg/b.py": ("from pkg.c import leaf\n"
                         "def mid(x):\n    return leaf(x)\n"),
            "pkg/c.py": "def leaf(x):\n    return x\n",
        })
        chains = ir.reachable("pkg.a:top")
        keys = [key for key, _ in chains["pkg.c:leaf"]]
        assert keys == ["pkg.b:mid", "pkg.c:leaf"]

    def test_import_graph(self, tmp_path):
        ir = build_ir(tmp_path, {
            "pkg/a.py": "from pkg.b import f\n",
            "pkg/b.py": "def f():\n    return 0\n",
        })
        graph = ir.import_graph()
        assert graph["pkg.a"] == ["pkg.b"]
        assert graph["pkg.b"] == []
