"""Replay-determinism harness: digests agree across runs and with checks on."""

from repro.analysis.replay import ReplayReport, fig6_replay


class TestFig6Replay:
    def test_bit_identical_with_and_without_checker(self):
        rep = fig6_replay(duration_scale=0.02, seed=0, runs=2)
        assert rep.identical, rep.render()
        assert rep.checker_summary is not None
        assert rep.checker_summary["violations"] == 0
        assert rep.checker_summary["checks_run"] > 0
        assert rep.ok

    def test_seed_changes_digest(self):
        a = fig6_replay(duration_scale=0.02, seed=0, runs=1,
                        with_invariants=True)
        b = fig6_replay(duration_scale=0.02, seed=1, runs=1,
                        with_invariants=True)
        assert a.digests[0] != b.digests[0]


class TestReplayReport:
    def test_diverged_report_not_ok(self):
        rep = ReplayReport(scenario="x", digests=["aa", "bb"],
                           labels=["run 1", "run 2"])
        assert not rep.identical
        assert not rep.ok
        assert "DIVERGED" in rep.render()

    def test_violations_fail_even_when_identical(self):
        rep = ReplayReport(
            scenario="x", digests=["aa", "aa"], labels=["run 1", "run 2"],
            checker_summary={"checks_run": 5, "violations": 1},
        )
        assert rep.identical and not rep.ok

    def test_render_lists_all_runs(self):
        rep = ReplayReport(scenario="x", digests=["aa", "aa"],
                           labels=["run 1", "run 2"])
        out = rep.render()
        assert "run 1" in out and "run 2" in out and "IDENTICAL" in out
