"""Parameter-sweep helpers (short runs)."""

import pytest

from repro.experiments.sweeps import (
    sweep_cache,
    sweep_redirectors,
    sweep_window,
)


class TestSweeps:
    def test_window_sweep_shape(self):
        points = sweep_window(lengths=(0.1, 0.2), duration=10.0)
        assert [p.knob for p in points] == [0.1, 0.2]
        for p in points:
            assert p.enforcement_error < 0.15
            assert p.a_rate + p.b_rate == pytest.approx(320.0, rel=0.08)

    def test_redirector_sweep_messages(self):
        points = sweep_redirectors(counts=(1, 4), duration=10.0)
        assert points[0].extra["messages_per_round"] == pytest.approx(0.0, abs=0.1)
        assert points[1].extra["messages_per_round"] == pytest.approx(6.0, rel=0.3)

    def test_cache_sweep_counts(self):
        points = sweep_cache(tolerances=(0.0, 0.25), duration=10.0)
        assert points[0].extra["cache_hits"] == 0.0
        assert points[1].extra["cache_hits"] > 0.0
        assert points[1].extra["lp_solves"] < points[0].extra["lp_solves"]
