import numpy as np
import pytest

from repro.experiments.ascii import sparkline, timeseries_plot


class TestSparkline:
    def test_shape(self):
        s = sparkline([0, 1, 2, 3, 2, 1, 0])
        assert len(s) == 7
        assert s[3] == "█"
        assert s[0] == " "

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "███"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_explicit_bounds(self):
        s = sparkline([5.0], lo=0.0, hi=10.0)
        assert s == "▄"


class TestTimeseriesPlot:
    def _series(self):
        t = np.arange(0.0, 30.0, 1.0)
        a = np.where(t < 15, 100.0, 200.0)
        b = np.full_like(t, 50.0)
        return {"A": (t, a), "B": (t, b)}

    def test_renders_grid(self):
        text = timeseries_plot(self._series(), width=30, height=8, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert len(lines) == 1 + 8 + 2      # title + grid + axis + legend
        assert "* A" in lines[-1] and "o B" in lines[-1]

    def test_step_visible(self):
        text = timeseries_plot({"A": self._series()["A"]}, width=30, height=6)
        rows = [l.split("|", 1)[1] for l in text.splitlines() if "|" in l]
        top_row_cols = [i for i, ch in enumerate(rows[0]) if ch == "*"]
        # The high half of the step occupies the right side of the top row.
        assert top_row_cols and min(top_row_cols) >= 14

    def test_empty(self):
        assert timeseries_plot({}) == "(no data)"

    def test_zero_series(self):
        t = np.arange(5.0)
        text = timeseries_plot({"A": (t, np.zeros(5))}, width=5, height=3)
        assert "|" in text
