"""Deterministic parallel execution: results never depend on job count."""

import dataclasses

import numpy as np
import pytest

from repro.experiments.parallel import (
    default_jobs,
    figure_kwargs,
    parallel_map,
    run_figures_parallel,
    scenario_seed,
)
from repro.experiments.sweeps import sweep_window
from repro.experiments.scaling import run_scaling_sweep


def _square(x):
    return x * x


class TestSeedPartitioning:
    def test_stable_across_calls(self):
        assert scenario_seed(0, "fig6") == scenario_seed(0, "fig6")

    def test_distinct_per_scenario(self):
        names = ["fig6", "fig7", "fig9", "sweep:0.1", "sweep:0.2"]
        seeds = {scenario_seed(42, n) for n in names}
        assert len(seeds) == len(names)

    def test_base_seed_matters(self):
        assert scenario_seed(0, "fig6") != scenario_seed(1, "fig6")

    def test_valid_numpy_seed(self):
        s = scenario_seed(2**31 - 1, "x" * 100)
        assert 0 <= s < 2**31
        np.random.default_rng(s)   # must not raise


class TestParallelMap:
    def test_preserves_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=1) == [x * x for x in items]

    def test_jobs_do_not_change_results(self):
        items = list(range(10))
        serial = parallel_map(_square, items, jobs=1)
        pooled = parallel_map(_square, items, jobs=2)
        assert serial == pooled

    def test_empty_items(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestDefaultJobs:
    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3

    def test_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            default_jobs()

    def test_env_nonpositive_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ValueError, match=">= 1"):
            default_jobs()

    def test_affinity_respected(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        if hasattr(os, "sched_getaffinity"):
            # The affinity mask, not the machine's core count, is the
            # authority inside cgroup/taskset-limited environments.
            assert default_jobs() == len(os.sched_getaffinity(0))

    def test_cpu_count_fallback(self, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        assert default_jobs() == max(1, os.cpu_count() or 1)


class TestFigureBatch:
    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError):
            run_figures_parallel(["nope"], jobs=1)

    def test_kwargs_shapes(self):
        assert figure_kwargs("fig1", 0.3, 7) == {}
        assert figure_kwargs("fig6", 0.3, 7) == {
            "duration_scale": 0.3, "seed": 7, "lp_cache": True,
            "fast_lane": True,
        }
        assert figure_kwargs("fig1d", 0.3, 7)["duration"] == pytest.approx(30.0)

    def test_partitioned_seeds_differ(self):
        k6 = figure_kwargs("fig6", 0.3, 7, partition_seeds=True)
        k7 = figure_kwargs("fig7", 0.3, 7, partition_seeds=True)
        assert k6["seed"] != k7["seed"]

    def test_parallel_matches_serial(self):
        serial = run_figures_parallel(["fig6"], scale=0.05, jobs=1)
        pooled = run_figures_parallel(["fig6"], scale=0.05, jobs=2)
        (n1, r1), (n2, r2) = serial[0], pooled[0]
        assert n1 == n2 == "fig6"
        assert [dataclasses.asdict(p) for p in r1.phases] == [
            dataclasses.asdict(p) for p in r2.phases
        ]


class TestSweepJobs:
    def test_sweep_results_independent_of_jobs(self):
        kw = dict(lengths=(0.1, 0.2), duration=8.0, seed=3)
        serial = sweep_window(jobs=1, **kw)
        pooled = sweep_window(jobs=2, **kw)
        assert [dataclasses.asdict(p) for p in serial] == [
            dataclasses.asdict(p) for p in pooled
        ]

    def test_scaling_sweep_accepts_jobs(self):
        pts = run_scaling_sweep(sizes=(6,), seed=0, duration=2.0, jobs=2)
        assert len(pts) == 1 and pts[0].n_principals == 6


class TestLaneThreading:
    def test_lane_reaches_columnar_capable_figures_only(self):
        assert figure_kwargs("fig6", 0.3, 7, lane="columnar")["lane"] == "columnar"
        assert figure_kwargs("fig9", 0.3, 7, lane="columnar")["lane"] == "columnar"
        assert figure_kwargs("fig10", 0.3, 7, lane="columnar")["lane"] == "columnar"
        assert "lane" not in figure_kwargs("fig7", 0.3, 7, lane="columnar")
        assert "lane" not in figure_kwargs("fig6", 0.3, 7)


class TestShardThreading:
    def test_shards_reach_sharded_figures_only(self):
        assert figure_kwargs("fig6", 0.3, 7, shards=4)["shards"] == 4
        assert figure_kwargs("fig9", 0.3, 7, shards=4)["shards"] == 4
        assert "shards" not in figure_kwargs("fig10", 0.3, 7, shards=4)
        assert "shards" not in figure_kwargs("fig7", 0.3, 7, shards=4)
        assert "shards" not in figure_kwargs("fig6", 0.3, 7)

    def test_shards_do_not_change_seed(self):
        base = figure_kwargs("fig6", 0.3, 7, partition_seeds=True)
        sharded = figure_kwargs("fig6", 0.3, 7, partition_seeds=True, shards=8)
        assert sharded["seed"] == base["seed"]
