import numpy as np
import pytest

from repro.experiments.harness import FigureResult, PhaseExpectation, Scenario
from repro.sim.monitor import PhaseStats


class TestFigureResult:
    def _result(self, measured, expected, tolerance=0.15):
        phases = [PhaseStats("p1", 0.0, 10.0, rates=measured)]
        return FigureResult(
            figure="figX",
            title="t",
            phases=phases,
            expected=[PhaseExpectation("p1", expected, tolerance=tolerance)],
        )

    def test_within_tolerance(self):
        r = self._result({"A": 100.0}, {"A": 105.0})
        assert r.ok

    def test_outside_tolerance(self):
        r = self._result({"A": 100.0}, {"A": 150.0})
        assert not r.ok

    def test_zero_expectation_uses_abs_floor(self):
        r = self._result({"A": 5.0}, {"A": 0.0})
        assert r.ok
        r2 = self._result({"A": 50.0}, {"A": 0.0})
        assert not r2.ok

    def test_missing_phase_skipped(self):
        phases = [PhaseStats("p1", 0.0, 1.0, rates={"A": 1.0})]
        r = FigureResult(
            figure="f", title="t", phases=phases,
            expected=[PhaseExpectation("p99", {"A": 1.0})],
        )
        assert r.deviations() == []

    def test_phase_lookup(self):
        r = self._result({"A": 1.0}, {"A": 1.0})
        assert r.phase("p1").rate("A") == 1.0
        with pytest.raises(KeyError):
            r.phase("nope")


class TestScenario:
    def test_builds_and_runs(self, fig6_graph):
        sc = Scenario(fig6_graph, seed=1)
        srv = sc.server("S", "S", 320.0)
        r1 = sc.l7("R1", {"S": srv})
        sc.client("C1", "A", r1, rate=50.0)
        sc.run(5.0)
        assert sc.meter.total("A", 0, 5.0) > 0
        # per-server series recorded too
        assert sc.meter.total("server:S", 0, 5.0) > 0

    def test_tree_requires_redirectors(self, fig6_graph):
        sc = Scenario(fig6_graph)
        with pytest.raises(RuntimeError):
            sc.connect_tree()

    def test_tree_built_once(self, fig6_graph):
        sc = Scenario(fig6_graph)
        srv = sc.server("S", "S", 320.0)
        sc.l7("R1", {"S": srv})
        sc.connect_tree()
        with pytest.raises(RuntimeError):
            sc.connect_tree()

    def test_extra_root_tree(self, fig6_graph):
        sc = Scenario(fig6_graph)
        srv = sc.server("S", "S", 320.0)
        sc.l7("R1", {"S": srv})
        sc.l7("R2", {"S": srv})
        tree = sc.connect_tree(extra_root=True)
        assert tree.root == "__root__"
        assert len(tree) == 3

    def test_phase_rates(self, fig6_graph):
        sc = Scenario(fig6_graph, seed=2)
        srv = sc.server("S", "S", 320.0)
        r1 = sc.l7("R1", {"S": srv})
        sc.client("C1", "A", r1, rate=100.0, windows=[(0.0, 5.0)])
        sc.run(10.0)
        stats = sc.phase_rates(
            [("on", 0.0, 5.0), ("off", 5.0, 10.0)], keys=["A"], settle=1.0
        )
        assert stats[0].rate("A") > 50.0
        assert stats[1].rate("A") < 10.0

    def test_response_stats(self, fig6_graph):
        sc = Scenario(fig6_graph, seed=4)
        srv = sc.server("S", "S", 320.0)
        r1 = sc.l7("R1", {"S": srv})
        sc.client("C1", "B", r1, rate=100.0)
        sc.run(10.0)
        stats = sc.response_stats()
        assert stats["B"]["count"] > 500
        assert 0.0 <= stats["B"]["p50"] <= stats["B"]["p95"] <= stats["B"]["max"]
        assert stats["B"]["mean"] < 0.5   # underloaded: fast responses

    def test_response_stats_empty(self, fig6_graph):
        sc = Scenario(fig6_graph)
        assert sc.response_stats() == {}

    def test_series(self, fig6_graph):
        sc = Scenario(fig6_graph, seed=3)
        srv = sc.server("S", "S", 320.0)
        r1 = sc.l7("R1", {"S": srv})
        sc.client("C1", "A", r1, rate=100.0)
        sc.run(5.0)
        series = sc.series(["A"])
        times, rates = series["A"]
        assert len(times) == len(rates) > 0


class TestColumnarLane:
    def test_unknown_lane_rejected(self, fig6_graph):
        with pytest.raises(ValueError):
            Scenario(fig6_graph, lane="vectorised")

    def test_lane_resolution(self, fig6_graph):
        assert Scenario(fig6_graph).lane == "slotted"
        assert Scenario(fig6_graph, fast_lane=False).lane == "scalar"
        sc = Scenario(fig6_graph, lane="scalar")
        assert (sc.lane, sc.fast_lane, sc.l4_fast_lane) == ("scalar", False, False)
        sc = Scenario(fig6_graph, lane="columnar")
        assert sc.lane == "columnar" and sc.columnar is not None

    def test_trace_falls_back_to_slotted(self, fig6_graph):
        sc = Scenario(fig6_graph, lane="columnar", trace=True)
        assert sc.lane == "slotted"
        assert sc.columnar is None
        assert "per-request events" in sc.lane_fallback

    def test_invariants_fall_back_to_slotted(self, fig6_graph):
        sc = Scenario(fig6_graph, lane="columnar", check_invariants=True)
        assert sc.lane == "slotted"
        assert sc.columnar is None

    def test_unsupported_client_demotes_before_any_columnar_client(
        self, fig6_graph,
    ):
        sc = Scenario(fig6_graph, lane="columnar")
        srv = sc.server("S", "S", 320.0)
        r1 = sc.l7("R1", {"S": srv})
        sc.client("C1", "A", r1, rate=50.0, mode="closed", users=4)
        assert sc.lane == "slotted"
        assert "closed-loop" in sc.lane_fallback

    def test_unsupported_client_after_columnar_client_raises(
        self, fig6_graph,
    ):
        sc = Scenario(fig6_graph, lane="columnar")
        srv = sc.server("S", "S", 320.0)
        r1 = sc.l7("R1", {"S": srv})
        sc.client("C1", "A", r1, rate=50.0, max_retry_pool=0)
        assert sc.lane == "columnar"
        with pytest.raises(ValueError):
            sc.client("C2", "B", r1, rate=50.0, mode="closed", users=4)

    def test_columnar_run_counts_requests(self, fig6_graph):
        sc = Scenario(fig6_graph, seed=5, lane="columnar")
        srv = sc.server("S", "S", 320.0)
        r1 = sc.l7("R1", {"S": srv})
        cli = sc.client("C1", "A", r1, rate=100.0, max_retry_pool=0)
        sc.run(10.0)
        assert sc.columnar.requests == cli.issued > 0
        assert sc.meter.total("A", 0, 10.0) > 0
