"""Every paper figure reproduces its shape (reduced-scale runs).

These are the repository's headline integration tests: each one executes
the full stack (agreement calculus -> LP scheduler -> combining tree ->
redirector -> clients -> servers) on the paper's exact scenario and checks
the measured phase rates against the figure.
"""

import pytest

from repro.experiments.figures import (
    run_fig1,
    run_fig1_distributed,
    run_fig3,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
)

SCALE = 0.2  # 20 s phases instead of 100 s; steady states settle well before


class TestFig1:
    def test_endpoint_violates_and_coordination_restores(self):
        r = run_fig1()
        assert r.endpoint["A"] == pytest.approx(30.0, abs=0.5)
        assert r.endpoint["B"] == pytest.approx(70.0, abs=0.5)
        assert r.coordinated["A"] == pytest.approx(20.0, abs=0.5)
        assert r.coordinated["B"] == pytest.approx(80.0, abs=0.5)
        assert r.ok


@pytest.mark.slow
class TestFig1Distributed:
    def test_full_simulation_shows_violation_and_fix(self):
        r = run_fig1_distributed(duration=30.0, seed=0)
        # End-point: B falls visibly short of its 80 req/s entitlement.
        assert r.endpoint["B"] == pytest.approx(70.0, abs=4.0)
        assert r.endpoint["A"] == pytest.approx(30.0, abs=4.0)
        # Coordinated: the SLA split is restored.
        assert r.coordinated["B"] == pytest.approx(80.0, abs=4.0)
        assert r.coordinated["A"] == pytest.approx(20.0, abs=4.0)


class TestFig3:
    def test_exact_currency_values(self):
        r = run_fig3()
        assert r.ok
        assert r.finals["B"] == pytest.approx((760.0, 1340.0))
        assert r.tickets["O-Ticket4"] == pytest.approx(960.0)


@pytest.mark.slow
class TestTimelineFigures:
    def test_fig6(self):
        r = run_fig6(duration_scale=SCALE, seed=0)
        assert r.ok, r.deviations()

    def test_fig7(self):
        r = run_fig7(duration_scale=SCALE, seed=0)
        assert r.ok, r.deviations()

    def test_fig8(self):
        # Scale down the lag with the duration to keep phases meaningful.
        r = run_fig8(duration_scale=SCALE, seed=0, lag=4.0)
        assert r.ok, r.deviations()

    def test_fig9(self):
        r = run_fig9(duration_scale=SCALE, seed=0)
        assert r.ok, r.deviations()

    def test_fig10(self):
        r = run_fig10(duration_scale=SCALE, seed=0)
        assert r.ok, r.deviations()

    def test_fig6_seed_insensitive(self):
        r = run_fig6(duration_scale=SCALE, seed=99)
        assert r.ok, r.deviations()

    def test_fig8_rejects_lag_without_steady_phase(self):
        with pytest.raises(ValueError, match="steady phase"):
            run_fig8(duration_scale=0.05, lag=10.0)

    def test_fig8_default_lag_clamps(self):
        # With no explicit lag, scaled-down runs pick a feasible one.
        r = run_fig8(duration_scale=0.1, seed=0)
        assert r.ok, r.deviations()
