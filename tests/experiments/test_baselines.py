import pytest

from repro.cluster.request import Request
from repro.cluster.server import Server
from repro.experiments.baselines import (
    PassthroughRedirector,
    run_enforcement_comparison,
)
from repro.sim.engine import Simulator


class TestPassthroughRedirector:
    def test_admits_everything(self):
        sim = Simulator()
        srv = Server(sim, "S", 100.0)
        red = PassthroughRedirector(sim, "R", {"S": srv})
        from repro.cluster.client import Redirect

        for i in range(10):
            d = red.handle(Request(principal="A", client_id="c", created_at=0.0))
            assert isinstance(d, Redirect)
        assert red.admitted["A"] == 10

    def test_spreads_by_capacity(self):
        sim = Simulator()
        s1 = Server(sim, "S1", 300.0)
        s2 = Server(sim, "S2", 100.0)
        red = PassthroughRedirector(sim, "R", {"X": [s1, s2]})
        targets = []
        from repro.cluster.client import Redirect

        for _ in range(40):
            d = red.handle(Request(principal="A", client_id="c", created_at=0.0))
            assert isinstance(d, Redirect)
            targets.append(d.server.name)
        assert targets.count("S1") == 30
        assert targets.count("S2") == 10

    def test_needs_servers(self):
        with pytest.raises(ValueError):
            PassthroughRedirector(Simulator(), "R", {})

    def test_bias_applies_per_principal(self):
        """Each principal's stream is split by the bias independently — a
        shared rotor would let interleaving decide who goes where."""
        sim = Simulator()
        s1 = Server(sim, "S1", 100.0)
        s2 = Server(sim, "S2", 100.0)
        red = PassthroughRedirector(
            sim, "R", {"X": [s1, s2]}, weights={"S1": 3.0, "S2": 1.0}
        )
        targets = {"A": [], "B": []}
        from repro.cluster.client import Redirect

        # Perfectly interleaved A/B arrivals (the aliasing-prone pattern).
        for i in range(80):
            p = "A" if i % 2 == 0 else "B"
            d = red.handle(Request(principal=p, client_id="c", created_at=0.0))
            assert isinstance(d, Redirect)
            targets[p].append(d.server.name)
        for p in ("A", "B"):
            assert targets[p].count("S1") == 30   # exactly 75% of 40
            assert targets[p].count("S2") == 10


class TestEnforcementComparison:
    def test_wrr_violates_coordination_does_not(self):
        cmp = run_enforcement_comparison(duration=20.0, seed=1)
        # Coordinated: B's 135 req/s demand (under its 256 guarantee) is met.
        assert cmp.violation("coordinated", "B") < 10.0
        # Pass-through: B is squeezed toward its offered-load share (~80).
        assert cmp.passthrough["B"] < 100.0
        assert cmp.passthrough_violates
        # Both strategies keep the server saturated.
        assert sum(cmp.coordinated.values()) == pytest.approx(320.0, rel=0.05)
        assert sum(cmp.passthrough.values()) == pytest.approx(320.0, rel=0.05)
