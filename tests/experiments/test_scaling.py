"""Scaling-study helpers (short runs)."""

import pytest

from repro.core.access import compute_access_levels
from repro.experiments.scaling import random_community, run_scaling_point


class TestRandomCommunity:
    def test_structure(self):
        g = random_community(12, seed=3)
        assert len(g) == 12
        owners = [n for n in g.names if g.principal(n).capacity > 0]
        assert len(owners) == 4
        assert g.agreements()          # some sharing exists
        g.validate()

    @pytest.mark.parametrize("seed", range(5))
    def test_always_valid_and_solvable(self, seed):
        g = random_community(20, seed=seed)
        access = compute_access_levels(g)
        # Conservation: total mandatory == total capacity.
        assert access.MC.sum() == pytest.approx(access.V.sum(), abs=1e-6)

    def test_reproducible(self):
        a = random_community(10, seed=1)
        b = random_community(10, seed=1)
        assert [str(x) for x in a.agreements()] == [str(x) for x in b.agreements()]


class TestScalingPoint:
    def test_metrics_populated(self):
        p = run_scaling_point(8, seed=0, duration=6.0)
        assert p.n_principals == 8
        assert p.solves > 0
        assert p.lp_ms_mean > 0.0
        assert 0.0 <= p.guarantee_satisfaction <= 1.0
        assert p.throughput <= p.capacity * 1.05
