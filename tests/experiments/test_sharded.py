"""Sharded single-scenario execution: parity, routing, and failure tests.

The sharded lane's whole contract is one equality: ``shards=1`` and
``shards=R`` produce bit-identical SHA-256 digests for every R — and,
since the zero-copy data plane landed, for either transport.  The digest
deliberately excludes both the shard count and the transport, so equality
*is* the proof that partitioning, boundary publication (pickled pipe
messages or shared-memory seqlock slots) and the combining-tree fold
carry no shard- or transport-dependent state.
"""

import pytest

from repro.coordination.barrier import ShardWorkerError
from repro.coordination.checkpoint import RecoveryPolicy
from repro.experiments.figures import run_fig6, run_fig9
from repro.experiments.harness import Scenario
from repro.experiments.sharded import (
    ShardedRunner,
    run_sharded,
    run_sharded_figure,
    sharded_fig6_world,
)
from repro.faults.plan import FaultPlanError

# Small but non-degenerate worlds: 4 replicas give fig6 8 clusters and
# fig9 4 clusters, so every shard count below actually partitions work.
SCALE = 0.02
REPLICAS = 4


def digest(figure, shards, seed=0, transport="shm"):
    return run_sharded(figure, duration_scale=SCALE, seed=seed,
                       shards=shards, replicas=REPLICAS,
                       transport=transport).digest()


class TestDigestParity:
    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_fig6_bit_identical_across_shard_counts(self, transport):
        reference = digest("fig6", 1)
        for shards in (2, 4, 8):
            assert digest("fig6", shards, transport=transport) == reference

    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_fig9_bit_identical_across_shard_counts(self, transport):
        reference = digest("fig9", 1)
        for shards in (2, 4):
            assert digest("fig9", shards, transport=transport) == reference

    def test_digest_depends_on_seed_not_shards(self):
        assert digest("fig6", 1, seed=0) != digest("fig6", 1, seed=1)
        assert digest("fig6", 4, seed=1) == digest("fig6", 1, seed=1)

    def test_shards_clamped_to_cluster_count(self):
        world = sharded_fig6_world(duration_scale=SCALE, seed=0, replicas=1)
        runner = ShardedRunner(world, shards=64)
        assert runner.shards == len(world.clusters)

    def test_policy_counters_match_inline(self):
        a = run_sharded("fig6", duration_scale=SCALE, seed=0, shards=1,
                        replicas=REPLICAS)
        b = run_sharded("fig6", duration_scale=SCALE, seed=0, shards=4,
                        replicas=REPLICAS)
        # The LP runs in the parent either way: identical merged demand
        # must produce identical solve/cache/fallback counts.
        assert (a.lp_solves, a.cache_hits, a.fallback_windows) == \
               (b.lp_solves, b.cache_hits, b.fallback_windows)


class TestDataPlane:
    """Transport selection and the byte accounting the bench gates on."""

    def test_invalid_transport_rejected(self):
        world = sharded_fig6_world(duration_scale=SCALE, seed=0,
                                   replicas=REPLICAS)
        with pytest.raises(ValueError, match="transport"):
            ShardedRunner(world, shards=2, transport="carrier-pigeon")

    def test_inline_run_reports_inline_plane(self):
        res = run_sharded("fig6", duration_scale=SCALE, seed=0, shards=1,
                          replicas=REPLICAS)
        assert res.data_plane == "inline"

    def test_shm_moves_an_order_of_magnitude_fewer_bytes(self):
        pipe = run_sharded("fig6", duration_scale=SCALE, seed=0, shards=4,
                           replicas=REPLICAS, transport="pipe")
        shm = run_sharded("fig6", duration_scale=SCALE, seed=0, shards=4,
                          replicas=REPLICAS, transport="shm")
        assert pipe.data_plane == "pipe" and pipe.bytes_per_epoch > 0
        if shm.data_plane != "shm":        # platform without POSIX shm
            assert shm.transport_fallback
            pytest.skip(f"shm unavailable: {shm.transport_fallback}")
        assert shm.transport_fallback is None
        # The PR's headline number: >= 10x fewer parent-handled bytes.
        assert pipe.bytes_per_epoch >= 10 * shm.bytes_per_epoch
        # The deferred checkpoint ring is accounted, not hidden.
        assert shm.ring_bytes_per_epoch > 0

    def test_figure_notes_name_the_data_plane(self):
        res = run_sharded_figure("fig6", duration_scale=SCALE, seed=0,
                                 shards=2, transport="pipe")
        assert "data plane pipe" in res.notes


class TestFigureIntegration:
    def test_fig6_phase_rates_match_paper(self):
        res = run_sharded_figure("fig6", duration_scale=0.2, seed=0, shards=2)
        assert res.ok, res.notes
        assert "shards=2" in res.notes

    def test_fig9_phase_rates_match_paper(self):
        res = run_sharded_figure("fig9", duration_scale=0.2, seed=0, shards=2)
        assert res.ok, res.notes

    def test_run_fig6_routes_to_sharded_lane(self):
        res = run_fig6(duration_scale=0.2, seed=0, shards=2)
        assert "sharded lane" in res.notes

    def test_run_fig9_routes_to_sharded_lane(self):
        res = run_fig9(duration_scale=0.2, seed=0, shards=2)
        assert "sharded lane" in res.notes

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError, match="sharded lane supports"):
            run_sharded("fig10")


class TestScenarioFallback:
    def test_event_lane_scenario_falls_back_to_serial(self, fig6_graph):
        scenario = Scenario(fig6_graph, shards=4)
        assert scenario.shards == 1
        assert scenario.shard_fallback is not None
        assert "sharded lane" in scenario.shard_fallback

    def test_shards_one_is_not_a_fallback(self, fig6_graph):
        scenario = Scenario(fig6_graph, shards=1)
        assert scenario.shards == 1
        assert scenario.shard_fallback is None

    def test_invalid_shards_rejected(self, fig6_graph):
        with pytest.raises(ValueError):
            Scenario(fig6_graph, shards=0)


class TestWorkerFailure:
    def test_worker_death_raises_typed_error_not_hang(self, monkeypatch):
        # Shard 0 calls os._exit(3) at the top of epoch 1; with recovery
        # disabled the barrier must detect the dead process and raise
        # within its timeout (the PR 7 fail-stop contract, preserved).
        monkeypatch.setenv("REPRO_SHARD_FAULT", "0:1")
        world = sharded_fig6_world(duration_scale=SCALE, seed=0,
                                   replicas=REPLICAS)
        runner = ShardedRunner(world, shards=2, epoch_timeout=30.0,
                               recovery=None)
        with pytest.raises(ShardWorkerError, match="died mid-window"):
            runner.run()

    def test_fault_env_ignored_by_other_shards(self, monkeypatch):
        # A fault address that never fires must leave results untouched.
        monkeypatch.setenv("REPRO_SHARD_FAULT", "99:0")
        assert digest("fig6", 2) == digest("fig6", 1)

    def test_explicit_out_of_range_fault_is_typed_error(self):
        world = sharded_fig6_world(duration_scale=SCALE, seed=0,
                                   replicas=REPLICAS)
        with pytest.raises(FaultPlanError, match="shard 9"):
            ShardedRunner(world, shards=2, faults=["9:1"])

    def test_explicit_malformed_fault_is_typed_error(self):
        world = sharded_fig6_world(duration_scale=SCALE, seed=0,
                                   replicas=REPLICAS)
        with pytest.raises(FaultPlanError, match="malformed"):
            ShardedRunner(world, shards=2, faults=["0:1:frobnicate"])


def faulted(figure, shards, faults, **kwargs):
    return run_sharded(figure, duration_scale=SCALE, seed=0, shards=shards,
                       replicas=REPLICAS, faults=faults, **kwargs)


class TestCrashRecovery:
    """Self-healing: deaths at window barriers leave the digest intact.

    Parametrized cells run on both data planes — recovery under shm
    restores from the shared checkpoint ring (decoded binary records)
    rather than the parent's pickled store, and must land on the same
    digests.
    """

    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_exception_death_recovers_bit_identical(self, transport):
        res = faulted("fig6", 2, ["0:3:exc"], transport=transport)
        assert [r.epoch for r in res.restarts] == [3]
        assert res.restarts[0].restored_epoch == 2
        assert res.digest() == digest("fig6", 1)

    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_sigkill_death_recovers_bit_identical(self, transport):
        res = faulted("fig6", 2, ["1:4:kill"], transport=transport)
        assert len(res.restarts) == 1
        assert res.digest() == digest("fig6", 1)

    def test_two_deaths_two_epochs_both_paths(self):
        baseline = run_sharded("fig6", duration_scale=SCALE, seed=0,
                               shards=1, replicas=REPLICAS)
        res = faulted("fig6", 4, ["0:2:exc", "1:5:kill"])
        assert [(r.shard, r.epoch) for r in res.restarts] == [(0, 2), (1, 5)]
        assert res.digest() == baseline.digest()
        # Recovery restored exactly the state the unfaulted run ends in.
        assert res.final_checkpoint_digest == baseline.final_checkpoint_digest

    def test_death_at_epoch_zero_rebuilds_fresh(self):
        res = faulted("fig6", 2, ["0:0:exc"])
        assert res.restarts[0].restored_epoch == -1
        assert res.digest() == digest("fig6", 1)

    def test_restart_records_checkpoint_digest(self):
        res = faulted("fig6", 2, ["0:3:exc"])
        assert res.restarts[0].restored_digest  # non-empty SHA-256
        assert res.restarts[0].attempt == 1     # 1-based: first respawn

    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_budget_exhaustion_reassigns_to_survivors(self, transport):
        policy = RecoveryPolicy(max_restarts=1, backoff_base=0.01)
        res = faulted("fig6", 2, ["0:2:kill", "0:4:kill"], recovery=policy,
                      transport=transport)
        assert len(res.restarts) == 1
        assert len(res.reassignments) == 1
        move = res.reassignments[0]
        assert move.shard == 0 and move.epoch == 4
        assert set(move.assignments.values()) == {1}   # only survivor
        assert res.digest() == digest("fig6", 1)

    def test_no_reassign_policy_fails_stop(self):
        policy = RecoveryPolicy(max_restarts=0, reassign_on_exhaustion=False,
                                backoff_base=0.01)
        world = sharded_fig6_world(duration_scale=SCALE, seed=0,
                                   replicas=REPLICAS)
        runner = ShardedRunner(world, shards=2, epoch_timeout=30.0,
                               recovery=policy, faults=["0:2:exc"])
        with pytest.raises(ShardWorkerError):
            runner.run()

    @pytest.mark.parametrize("transport", ["pipe", "shm"])
    def test_fig9_recovery_parity(self, transport):
        res = faulted("fig9", 2, ["0:3:kill"], transport=transport)
        assert len(res.restarts) == 1
        assert res.digest() == digest("fig9", 1)
