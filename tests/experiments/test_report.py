from repro.experiments.figures import run_fig1, run_fig3
from repro.experiments.harness import FigureResult, PhaseExpectation
from repro.experiments.report import render_result
from repro.sim.monitor import PhaseStats

import pytest


class TestRendering:
    def test_fig1_render(self):
        text = render_result(run_fig1())
        assert "end-point" in text
        assert "30.0" in text and "70.0" in text
        assert "shape reproduced: yes" in text

    def test_fig3_render(self):
        text = render_result(run_fig3())
        assert "1140" in text
        assert "O-Ticket4" in text
        assert "reproduced exactly: yes" in text

    def test_figure_result_render(self):
        r = FigureResult(
            figure="figX",
            title="demo",
            phases=[PhaseStats("p1", 0.0, 1.0, rates={"A": 100.0})],
            expected=[PhaseExpectation("p1", {"A": 100.0})],
            notes="a note",
        )
        text = render_result(r)
        assert "figX" in text and "a note" in text
        assert "| p1 | A | 100.0 | 100.0 | yes |" in text

    def test_failed_row_marked(self):
        r = FigureResult(
            figure="figX",
            title="demo",
            phases=[PhaseStats("p1", 0.0, 1.0, rates={"A": 10.0})],
            expected=[PhaseExpectation("p1", {"A": 100.0})],
        )
        text = render_result(r)
        assert "NO" in text

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            render_result(42)
