import pytest
from hypothesis import given, settings, strategies as st

from repro.l7.http import (
    HttpError,
    HttpRequest,
    HttpResponse,
    parse_request,
    parse_response,
)


class TestRequestCodec:
    def test_roundtrip(self):
        req = HttpRequest(
            method="GET", path="/svc/A/page",
            headers={"Host": "example.com", "X-Custom": "v"},
        )
        parsed, rest = parse_request(req.encode())
        assert parsed.method == "GET"
        assert parsed.path == "/svc/A/page"
        assert parsed.header("host") == "example.com"
        assert parsed.header("x-custom") == "v"
        assert rest == b""

    def test_body_roundtrip(self):
        req = HttpRequest(method="POST", path="/", body=b"hello")
        parsed, rest = parse_request(req.encode())
        assert parsed.body == b"hello"
        assert rest == b""

    def test_pipelined_leftover(self):
        data = HttpRequest(method="GET", path="/a").encode() + b"EXTRA"
        parsed, rest = parse_request(data)
        assert parsed.path == "/a"
        assert rest == b"EXTRA"

    def test_incomplete_raises(self):
        with pytest.raises(HttpError):
            parse_request(b"GET / HTTP/1.1\r\nHost: x")

    def test_incomplete_body_raises(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"
        with pytest.raises(HttpError):
            parse_request(raw)

    def test_malformed_request_line(self):
        with pytest.raises(HttpError):
            parse_request(b"GARBAGE\r\n\r\n")

    def test_malformed_header(self):
        with pytest.raises(HttpError):
            parse_request(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")

    def test_header_canonicalization(self):
        parsed, _ = parse_request(b"GET / HTTP/1.1\r\ncontent-TYPE: text/x\r\n\r\n")
        assert parsed.headers["Content-Type"] == "text/x"


class TestResponseCodec:
    def test_ok_roundtrip(self):
        resp = HttpResponse.ok(b"body bytes")
        parsed, rest = parse_response(resp.encode())
        assert parsed.status == 200
        assert parsed.body == b"body bytes"
        assert rest == b""

    def test_redirect(self):
        resp = HttpResponse.redirect("http://srv:8080/x", retry_after=0.25)
        parsed, _ = parse_response(resp.encode())
        assert parsed.status == 302
        assert parsed.header("location") == "http://srv:8080/x"
        assert parsed.header("retry-after") == "0.25"

    def test_default_reasons(self):
        assert HttpResponse(status=200).reason == "OK"
        assert HttpResponse(status=302).reason == "Found"
        assert HttpResponse(status=599).reason == "Unknown"

    def test_malformed_status_line(self):
        with pytest.raises(HttpError):
            parse_response(b"NOT HTTP\r\n\r\n")


class TestProperties:
    @given(
        st.sampled_from(["GET", "POST", "HEAD"]),
        st.text(
            alphabet=st.characters(min_codepoint=0x21, max_codepoint=0x7E),
            min_size=1, max_size=40,
        ).map(lambda s: "/" + s.replace("\\", "")),
        st.binary(max_size=200),
    )
    @settings(max_examples=100, deadline=None)
    def test_request_roundtrip_property(self, method, path, body):
        if " " in path:
            return
        req = HttpRequest(method=method, path=path, body=body)
        parsed, rest = parse_request(req.encode())
        assert parsed.method == method
        assert parsed.path == path
        assert parsed.body == body
        assert rest == b""

    @given(st.integers(min_value=100, max_value=599), st.binary(max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_response_roundtrip_property(self, status, body):
        resp = HttpResponse(status=status, body=body,
                            headers={"Content-Length": str(len(body))})
        parsed, rest = parse_response(resp.encode())
        assert parsed.status == status
        assert parsed.body == body
        assert rest == b""
