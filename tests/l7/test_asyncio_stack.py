"""Integration tests for the real asyncio L7 stack on localhost."""

import asyncio
import time

import pytest

from repro.core.access import compute_access_levels
from repro.core.agreements import Agreement, AgreementGraph
from repro.l7.asyncio_client import AsyncLoadGenerator, fetch_once
from repro.l7.asyncio_origin import OriginServer, principal_from_path
from repro.l7.asyncio_redirector import AsyncCombiner, AsyncRedirector
from repro.scheduling.window import WindowConfig


def _access(capacity=200.0, a=0.2, b=0.8):
    g = AgreementGraph()
    g.add_principal("S", capacity=capacity)
    g.add_principal("A")
    g.add_principal("B")
    g.add_agreement(Agreement("S", "A", a, 1.0))
    g.add_agreement(Agreement("S", "B", b, 1.0))
    return compute_access_levels(g)


def _run(coro):
    return asyncio.run(coro)


class TestPrincipalFromPath:
    def test_valid(self):
        assert principal_from_path("/svc/A/page") == "A"
        assert principal_from_path("/svc/org-1/deep/path?q=1") == "org-1"

    def test_invalid(self):
        assert principal_from_path("/other/A") is None
        assert principal_from_path("/svc/") is None
        assert principal_from_path("/") is None


class TestOriginServer:
    def test_serves_and_counts(self):
        async def body():
            origin = OriginServer("S1", capacity=500.0)
            await origin.start()
            status, served_by = await fetch_once(*origin.address, "/svc/A/x")
            await origin.stop()
            return status, served_by, dict(origin.completed)

        status, served_by, completed = _run(body())
        assert status == 200
        assert served_by == "S1"
        assert completed == {"A": 1}

    def test_capacity_limits_rate(self):
        async def body():
            origin = OriginServer("S1", capacity=50.0)
            await origin.start()
            import time

            t0 = time.monotonic()
            await asyncio.gather(
                *[fetch_once(*origin.address, "/svc/A/x") for _ in range(40)]
            )
            elapsed = time.monotonic() - t0
            await origin.stop()
            return elapsed

        elapsed = _run(body())
        # 40 requests through a 50/s bucket (burst ~2.5) needs >= ~0.6 s.
        assert elapsed >= 0.5


class TestRedirection:
    def test_redirects_to_backend(self):
        async def body():
            acc = _access()
            origin = OriginServer("S1", capacity=1000.0)
            await origin.start()
            red = AsyncRedirector("R1", acc, backends={"S": [origin.address]})
            await red.start()
            # Give the window loop one cycle to install quotas.
            await asyncio.sleep(0.3)
            # Warm the demand estimate so a quota exists, then fetch.
            results = []
            for _ in range(10):
                results.append(await fetch_once(*red.address, "/svc/B/x"))
                await asyncio.sleep(0.02)
            await red.stop()
            await origin.stop()
            return results, origin.total_completed()

        results, completed = _run(body())
        assert any(status == 200 for status, _ in results)
        assert completed >= 1

    def test_unknown_principal_404(self):
        async def body():
            acc = _access()
            red = AsyncRedirector("R1", acc, backends={})
            await red.start()
            status, _ = await fetch_once(*red.address, "/nonsense")
            await red.stop()
            return status

        assert _run(body()) == 404

    def test_share_enforcement_under_overload(self):
        async def body():
            acc = _access(capacity=150.0, a=0.2, b=0.8)
            origin = OriginServer("S1", capacity=150.0)
            await origin.start()
            red = AsyncRedirector("R1", acc, backends={"S": [origin.address]})
            await red.start()
            ga = AsyncLoadGenerator("A", red.address, rate=200.0, concurrency=64)
            gb = AsyncLoadGenerator("B", red.address, rate=100.0, concurrency=64)
            ra, rb = await asyncio.gather(ga.run(3.0), gb.run(3.0))
            await red.stop()
            await origin.stop()
            return ra, rb

        ra, rb = _run(body())
        # B's demand (100/s) is under its guarantee (120/s): served ~fully.
        assert rb["rate"] == pytest.approx(100.0, rel=0.2)
        # A is squeezed to roughly the remainder, far below its demand.
        assert ra["rate"] < 90.0


class TestProviderMode:
    def test_provider_mode_prefers_high_payer(self):
        async def body():
            from repro.core.agreements import Agreement, AgreementGraph
            from repro.core.access import compute_access_levels

            g = AgreementGraph()
            g.add_principal("P", capacity=120.0)
            g.add_principal("A")
            g.add_principal("B")
            g.add_agreement(Agreement("P", "A", 0.5, 1.0))
            g.add_agreement(Agreement("P", "B", 0.1, 1.0))
            acc = compute_access_levels(g)
            origin = OriginServer("S1", capacity=120.0)
            await origin.start()
            red = AsyncRedirector(
                "R1", acc, backends={"P": [origin.address]},
                mode="provider", prices={"A": 3.0, "B": 1.0},
            )
            await red.start()
            ga = AsyncLoadGenerator("A", red.address, rate=120.0, concurrency=48)
            gb = AsyncLoadGenerator("B", red.address, rate=120.0, concurrency=48)
            ra, rb = await asyncio.gather(ga.run(3.0), gb.run(3.0))
            await red.stop()
            await origin.stop()
            return ra, rb

        ra, rb = _run(body())
        # A pays more: it is served clearly above B despite equal offered
        # load, and B still sees at least its mandatory floor (12 req/s).
        assert ra["rate"] > 1.5 * rb["rate"]
        assert rb["rate"] >= 10.0


class TestFetchOnce:
    def test_redirect_loop_capped(self):
        """A redirector that always self-redirects must not loop forever."""
        async def body():
            acc = _access()
            red = AsyncRedirector("R1", acc, backends={})  # no backends at all
            await red.start()
            # With no quota installed yet every request self-redirects.
            status, _ = await fetch_once(*red.address, "/svc/A/x",
                                         max_redirects=3, retry_cap=0.01)
            await red.stop()
            return status

        assert _run(body()) == -2   # loop budget exhausted, surfaced

    def test_read_timeout_bounds_a_silent_server(self):
        """A server that accepts and never answers must cost at most the
        read timeout per attempt, then surface a timeout."""
        async def body():
            async def mute(reader, writer):
                await asyncio.sleep(10.0)      # never respond

            server = await asyncio.start_server(mute, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            t0 = time.monotonic()
            with pytest.raises(asyncio.TimeoutError):
                await fetch_once(
                    "127.0.0.1", port, "/svc/A/x",
                    read_timeout=0.1, retries=1, retry_backoff=0.01,
                )
            elapsed = time.monotonic() - t0
            server.close()
            await server.wait_closed()
            return elapsed

        elapsed = _run(body())
        # Two bounded attempts + one short backoff, not a 10 s hang.
        assert elapsed < 2.0

    def test_connect_refused_retries_then_surfaces(self):
        async def body():
            # Grab a port and close it so connections are refused.
            server = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            port = server.sockets[0].getsockname()[1]
            server.close()
            await server.wait_closed()
            with pytest.raises(OSError):
                await fetch_once(
                    "127.0.0.1", port, "/svc/A/x",
                    retries=2, retry_backoff=0.01,
                )

        _run(body())

    def test_generator_counts_timeouts(self):
        async def body():
            async def mute(reader, writer):
                await asyncio.sleep(10.0)

            server = await asyncio.start_server(mute, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            gen = AsyncLoadGenerator(
                "A", ("127.0.0.1", port), rate=50.0, concurrency=4,
                read_timeout=0.05, retries=0,
            )
            stats = await gen.run(duration=0.4)
            server.close()
            await server.wait_closed()
            return gen, stats

        gen, stats = _run(body())
        assert stats["completed"] == 0
        assert gen.timeouts > 0
        assert gen.errors == gen.timeouts


class TestCombiner:
    def test_root_and_child_views_converge(self):
        async def body():
            root = AsyncCombiner("root", lambda: {"A": 1.0}, period=0.05)
            await root.start()
            child = AsyncCombiner(
                "child", lambda: {"A": 2.0, "B": 3.0}, period=0.05,
                root_addr=("127.0.0.1", root.port),
            )
            await child.start()
            await asyncio.sleep(0.6)
            rv = root.view.aggregate.values if root.view.aggregate else {}
            cv = child.view.aggregate.values if child.view.aggregate else {}
            await child.stop()
            await root.stop()
            return rv, cv

        rv, cv = _run(body())
        assert rv.get("A") == pytest.approx(3.0)
        assert rv.get("B") == pytest.approx(3.0)
        assert cv.get("A") == pytest.approx(3.0)

    def test_child_records_local_contribution(self):
        async def body():
            root = AsyncCombiner("root", lambda: {}, period=0.05)
            await root.start()
            child = AsyncCombiner(
                "child", lambda: {"A": 5.0}, period=0.05,
                root_addr=("127.0.0.1", root.port),
            )
            await child.start()
            await asyncio.sleep(0.5)
            contrib = child.view.local_contribution
            await child.stop()
            await root.stop()
            return contrib.values if contrib else {}

        contrib = _run(body())
        assert contrib.get("A") == pytest.approx(5.0)
