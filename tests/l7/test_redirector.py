"""Simulated L7 redirector unit/behaviour tests."""

import numpy as np
import pytest

from repro.cluster.client import ClientMachine, Defer, Drop, Held, Redirect
from repro.cluster.request import Request
from repro.cluster.server import Server
from repro.core.access import compute_access_levels
from repro.l7.redirector import L7Redirector
from repro.scheduling.window import WindowConfig
from repro.sim.engine import Simulator

W = WindowConfig(0.1)


def _world(fig6_graph, **kw):
    sim = Simulator()
    acc = compute_access_levels(fig6_graph)
    srv = Server(sim, "S", 320.0, owner="S")
    red = L7Redirector(sim, "R", acc, {"S": srv}, window=W, **kw)
    return sim, acc, srv, red


def _req(principal, t=0.0):
    return Request(principal=principal, client_id="C", created_at=t)


class TestAdmission:
    def test_unknown_principal_dropped(self, fig6_graph):
        sim, _, _, red = _world(fig6_graph)
        assert isinstance(red.handle(_req("nobody")), Drop)

    def test_first_window_defers_then_admits(self, fig6_graph):
        sim, _, srv, red = _world(fig6_graph)
        # Before any window has completed there is no quota: defer.
        assert isinstance(red.handle(_req("A")), Defer)
        # After windows pass with observed demand, quota appears.
        def offer():
            while True:
                red.handle(_req("A", sim.now))
                yield 0.01
        sim.process(offer())
        sim.run(until=1.0)
        assert red.admitted["A"] > 0

    def test_admitted_requests_redirected_to_server(self, fig6_graph):
        sim, _, srv, red = _world(fig6_graph)
        decisions = []
        def offer():
            while True:
                decisions.append(red.handle(_req("A", sim.now)))
                yield 0.02
        sim.process(offer())
        sim.run(until=2.0)
        redirects = [d for d in decisions if isinstance(d, Redirect)]
        assert redirects and all(d.server is srv for d in redirects)

    def test_demand_estimate_tracks_arrivals(self, fig6_graph):
        sim, _, _, red = _world(fig6_graph)
        def offer():
            while sim.now < 1.0:
                red.handle(_req("A", sim.now))
                yield 0.01          # 100/s -> 10/window
        sim.process(offer())
        sim.run(until=1.0)
        assert red.demand_estimate["A"] == pytest.approx(10.0, rel=0.2)

    def test_quota_enforced_under_overload(self, fig6_graph):
        sim, _, srv, red = _world(fig6_graph)
        # B [0.8,1] gets everything it asks; A limited by B's usage.
        meter = {"A": 0, "B": 0}
        def offer(p, gap):
            while True:
                d = red.handle(_req(p, sim.now))
                if isinstance(d, Redirect):
                    meter[p] += 1
                yield gap
        sim.process(offer("A", 1 / 500.0))   # A floods at 500/s
        sim.process(offer("B", 1 / 200.0))   # B offers 200/s
        sim.run(until=5.0)
        a_rate = meter["A"] / 5.0
        b_rate = meter["B"] / 5.0
        assert b_rate == pytest.approx(200.0, rel=0.1)   # fully served
        assert a_rate == pytest.approx(120.0, rel=0.2)   # remainder


class TestExplicitQueuing:
    def test_held_and_released(self, fig6_graph):
        sim, _, srv, red = _world(fig6_graph, queuing="explicit")
        done = []
        d = red.handle(_req("A"), done=lambda r: done.append(sim.now))
        assert isinstance(d, Held)
        assert red.queue_lengths()["A"] == 1
        sim.run(until=1.0)
        assert done                      # released in a later window
        assert red.admitted["A"] == 1

    def test_bounded_held_queue(self, fig6_graph):
        sim, _, _, red = _world(fig6_graph, queuing="explicit", max_held=3)
        decisions = [red.handle(_req("A")) for _ in range(5)]
        assert [type(d) for d in decisions] == [Held, Held, Held, Drop, Drop]

    def test_release_happens_at_window_boundary(self, fig6_graph):
        sim, _, srv, red = _world(fig6_graph, queuing="explicit")
        release_times = []
        for _ in range(4):
            red.handle(_req("A"), done=lambda r: release_times.append(r.completed_at))
        sim.run(until=1.0)
        assert len(release_times) == 4


class TestCreditAdmission:
    def test_credit_engine_matches_quota_rates(self, fig6_graph):
        """The credit-based engine enforces the same LP allocation as the
        windowed quota (paper §6's 'alternative credit-based
        implementation')."""
        import numpy as np
        from repro.cluster.client import ClientMachine

        def run(queuing):
            sim = Simulator()
            acc = compute_access_levels(fig6_graph)
            completions = {"A": 0, "B": 0}
            srv = Server(
                sim, "S", 320.0, owner="S",
                on_complete=lambda r, s: completions.__setitem__(
                    r.principal, completions[r.principal] + 1
                ),
            )
            red = L7Redirector(sim, "R", acc, {"S": srv}, window=W, queuing=queuing)
            ClientMachine(sim, "CA", "A", red, rate=405.0,
                          rng=np.random.default_rng(1))
            ClientMachine(sim, "CB", "B", red, rate=135.0,
                          rng=np.random.default_rng(2))
            sim.run(until=25.0)
            return {p: completions[p] / 25.0 for p in completions}

        quota_rates = run("implicit")
        credit_rates = run("credits")
        for p in ("A", "B"):
            assert credit_rates[p] == pytest.approx(quota_rates[p], rel=0.08)
        assert credit_rates["B"] == pytest.approx(135.0, rel=0.08)


class TestValidation:
    def test_bad_queuing_mode(self, fig6_graph):
        sim = Simulator()
        acc = compute_access_levels(fig6_graph)
        with pytest.raises(ValueError):
            L7Redirector(sim, "R", acc, {}, queuing="quantum")

    def test_bad_smoothing(self, fig6_graph):
        sim = Simulator()
        acc = compute_access_levels(fig6_graph)
        with pytest.raises(ValueError):
            L7Redirector(sim, "R", acc, {}, smoothing=0.0)


class TestEndToEndWithClients:
    def test_fig6_phase1_standalone(self, fig6_graph):
        """One redirector, no tree: enforcement still holds locally."""
        sim = Simulator()
        acc = compute_access_levels(fig6_graph)
        completions = {"A": 0, "B": 0}
        srv = Server(
            sim, "S", 320.0, owner="S",
            on_complete=lambda r, s: completions.__setitem__(
                r.principal, completions[r.principal] + 1
            ),
        )
        red = L7Redirector(sim, "R", acc, {"S": srv}, window=W)
        rng = np.random.default_rng(0)
        for i, (p, rate) in enumerate((("A", 135.0), ("A", 135.0), ("B", 135.0))):
            ClientMachine(
                sim, f"C{i}", p, red, rate=rate,
                rng=np.random.default_rng(i),
            )
        sim.run(until=30.0)
        a_rate = completions["A"] / 30.0
        b_rate = completions["B"] / 30.0
        assert b_rate == pytest.approx(135.0, rel=0.1)
        assert a_rate == pytest.approx(185.0, rel=0.1)
