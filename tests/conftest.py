"""Shared fixtures: the paper's canonical agreement graphs."""

import pytest

from repro.core.agreements import Agreement, AgreementGraph


@pytest.fixture
def fig3_graph() -> AgreementGraph:
    """The worked example of paper Fig 3."""
    g = AgreementGraph()
    g.add_principal("A", capacity=1000.0)
    g.add_principal("B", capacity=1500.0)
    g.add_principal("C", capacity=0.0)
    g.add_agreement(Agreement("A", "B", 0.4, 0.6))
    g.add_agreement(Agreement("B", "C", 0.6, 1.0))
    return g


@pytest.fixture
def fig6_graph() -> AgreementGraph:
    """Single 320 req/s server, A [0.2,1], B [0.8,1] (paper Fig 6)."""
    g = AgreementGraph()
    g.add_principal("S", capacity=320.0)
    g.add_principal("A")
    g.add_principal("B")
    g.add_agreement(Agreement("S", "A", 0.2, 1.0))
    g.add_agreement(Agreement("S", "B", 0.8, 1.0))
    return g


@pytest.fixture
def fig9_graph() -> AgreementGraph:
    """A and B each own 320 req/s; B grants A [0.5,0.5] (paper Fig 9)."""
    g = AgreementGraph()
    g.add_principal("A", capacity=320.0)
    g.add_principal("B", capacity=320.0)
    g.add_agreement(Agreement("B", "A", 0.5, 0.5))
    return g
