"""Run the executable examples embedded in module docstrings."""

import doctest

import pytest

import repro.coordination.tree
import repro.experiments.ascii
import repro.scheduling.wrr
import repro.sim.engine
import repro.sim.monitor
import repro.sim.rng
import repro.sim.trace

MODULES = [
    repro.sim.engine,
    repro.sim.monitor,
    repro.sim.rng,
    repro.sim.trace,
    repro.scheduling.wrr,
    repro.experiments.ascii,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    failures, tests = doctest.testmod(module).failed, doctest.testmod(module).attempted
    assert tests > 0, f"{module.__name__} has no doctests (remove it from the list)"
    assert failures == 0
