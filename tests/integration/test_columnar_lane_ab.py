"""Acceptance A/B: the columnar lane is bit-identical to both event lanes.

The columnar lane advances whole open-loop phases as numpy columns with
one engine event per window, so the contract is the strictest in the
repo: on the strict open-loop variant of a figure scenario (retry pools
off — the columnar operating envelope), per-window admitted/refused/
served series, every client/server counter and the combined SHA-256
digests must be *bit-identical* across all three lanes — scalar (per
request/packet events), slotted (chunked fast lane) and columnar.
``repro check --scenario fig6 --scenario fig9`` enforces the same
property in CI via :func:`repro.analysis.replay.columnar_replay`.

The batch-size invariance tests pin the structural argument: the gap
chain is a seeded cumsum restarted from the last emitted tick, so the
refill granularity (1k, 64k, or one whole phase per block) is
unobservable.
"""

import numpy as np
import pytest

from repro.analysis.replay import columnar_replay, scenario_digest
from repro.experiments.figures import fig6_scenario, fig9_scenario

SCALE = 0.05


def _series_equal(a, b):
    assert set(a) == set(b)
    for key in a:
        at, av = a[key]
        bt, bv = b[key]
        assert np.array_equal(at, bt), key
        assert np.array_equal(av, bv), key


@pytest.mark.parametrize("build", [fig6_scenario, fig9_scenario],
                         ids=["fig6", "fig9"])
def test_three_lanes_bit_identical(build):
    runs = {
        lane: build(duration_scale=SCALE, seed=0, lane=lane,
                    strict_open_loop=True)[0]
        for lane in ("scalar", "slotted", "columnar")
    }
    col = runs["columnar"]
    assert col.lane == "columnar" and col.lane_fallback is None
    assert col.columnar is not None and col.columnar.requests > 0
    for other in ("scalar", "slotted"):
        ref = runs[other]
        _series_equal(
            {k: col.meter.series(k) for k in col.meter.keys},
            {k: ref.meter.series(k) for k in ref.meter.keys},
        )
        for name, cli in col.clients.items():
            peer = ref.clients[name]
            assert (cli.issued, cli.admitted, cli.completed,
                    cli.deferred, cli.dropped) == \
                   (peer.issued, peer.admitted, peer.completed,
                    peer.deferred, peer.dropped), (other, name)
        for name, srv in col.servers.items():
            peer = ref.servers[name]
            assert srv.completed == peer.completed, (other, name)
            assert srv.busy_time == peer.busy_time, (other, name)
        assert scenario_digest(col) == scenario_digest(ref), other


@pytest.mark.parametrize("figure", ["fig6", "fig9", "fig10"])
def test_columnar_replay_digests_identical(figure):
    """The CLI harness criterion itself: combined scenario + admission
    digests match across scalar / slotted / columnar runs."""
    report = columnar_replay(figure=figure, duration_scale=SCALE, seed=0)
    assert report.labels == ["scalar", "slotted", "columnar"]
    assert report.meta["columnar_fallback"] is None
    assert report.meta["columnar_requests"] > 0
    assert report.identical, report.render()
    assert report.ok, report.render()


@pytest.mark.parametrize("batch", [1024, 65536, 1 << 22],
                         ids=["1k", "64k", "whole-phase"])
def test_batch_size_invariance(batch):
    """The refill block size must be unobservable: every batch reproduces
    the default's digest bit-for-bit (1<<22 covers any phase whole)."""
    def run(b):
        sc, _ = fig6_scenario(duration_scale=SCALE, seed=0, lane="columnar")
        return sc

    def run_with_batch(b):
        from repro.experiments.figures import _fig6_graph
        from repro.experiments.harness import Scenario

        T = 100.0 * SCALE
        sc = Scenario(_fig6_graph(320.0, 0.2, 0.8), seed=0, lane="columnar")
        server = sc.server("S", "S", 320.0)
        r1 = sc.l7("R1", {"S": server}, n_redirectors=2)
        r2 = sc.l7("R2", {"S": server}, n_redirectors=2)
        sc.connect_tree(link_delay=0.005)
        ckw = {"max_retry_pool": 0, "batch": b}
        sc.client("C1", "A", r1, rate=135.0, windows=[(0.0, 3 * T)], **ckw)
        sc.client("C2", "A", r1, rate=135.0, windows=[(0.0, 3 * T)], **ckw)
        sc.client("C3", "B", r2, rate=135.0,
                  windows=[(0.0, T), (2 * T, 3 * T)], **ckw)
        sc.run(3 * T)
        return sc

    reference = scenario_digest(run(None))
    assert scenario_digest(run_with_batch(batch)) == reference
