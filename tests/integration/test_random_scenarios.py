"""Randomised end-to-end enforcement: the repository's strongest property.

For random agreement DAGs, capacities and offered loads, the full stack
(calculus -> LP -> redirector -> clients -> servers) must deliver every
principal at least ``min(offered, MC_i)`` requests/second in steady state —
the guarantee the whole architecture exists to provide — while never
exceeding aggregate capacity.
"""

import numpy as np
import pytest

from repro.core.access import compute_access_levels
from repro.core.agreements import Agreement, AgreementGraph
from repro.experiments.harness import Scenario


def _random_world(rng: np.random.Generator):
    """A random 3-4 principal agreement DAG with servers and demands."""
    n = int(rng.integers(3, 5))
    g = AgreementGraph()
    names = [f"P{i}" for i in range(n)]
    caps = {}
    for name in names:
        cap = float(rng.choice([0.0, 100.0, 200.0, 320.0]))
        g.add_principal(name, capacity=cap)
        caps[name] = cap
    if sum(caps.values()) == 0.0:
        g.set_capacity(names[0], 200.0)
        caps[names[0]] = 200.0
    budget = {name: 1.0 for name in names}
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < 0.55:
                lb = float(rng.uniform(0.1, 0.5))
                lb = min(lb, budget[names[i]])
                if lb <= 0.01:
                    continue
                ub = float(min(1.0, lb + rng.uniform(0.0, 0.4)))
                g.add_agreement(Agreement(names[i], names[j], round(lb, 2), round(ub, 2)))
                budget[names[i]] -= lb
    demands = {
        name: float(rng.choice([0.0, 50.0, 150.0, 400.0])) for name in names
    }
    if all(d == 0.0 for d in demands.values()):
        demands[names[-1]] = 150.0
    return g, caps, demands


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(8))
def test_guarantees_hold_end_to_end(seed):
    rng = np.random.default_rng(seed)
    g, caps, demands = _random_world(rng)
    access = compute_access_levels(g)

    sc = Scenario(g, seed=seed)
    servers = {
        name: sc.server(f"S_{name}", name, cap)
        for name, cap in caps.items()
        if cap > 0
    }
    red = sc.l7("R", servers)
    for name, rate in demands.items():
        if rate > 0:
            sc.client(f"C_{name}", name, red, rate=rate)
    duration = 25.0
    sc.run(duration)

    total_rate = 0.0
    for name, offered in demands.items():
        measured = sc.meter.mean_rate(name, 10.0, duration)
        total_rate += measured
        floor = min(offered, access.mandatory(name))
        assert measured >= floor * 0.88, (
            f"seed {seed}: {name} got {measured:.1f} < guarantee "
            f"{floor:.1f} (offered {offered}, MC {access.mandatory(name):.1f})\n"
            f"graph: {[str(a) for a in g.agreements()]}, caps {caps}"
        )
    assert total_rate <= sum(caps.values()) * 1.05
