"""Acceptance A/B: the request-path fast lane must hold the paper's shapes.

Unlike the LP cache (``test_lp_cache_ab.py``), the fast lane draws its
workload from spawned child RNG streams, so fast vs scalar runs are
statistically equivalent rather than bit-identical.  The contract is that
*both* lanes land inside the figure tolerances — the same criterion the
paper comparison itself uses.
"""

import pytest

from repro.experiments.figures import run_fig1_distributed, run_fig6, run_fig7

SCALE = 0.3


@pytest.mark.parametrize("fast_lane", [True, False],
                         ids=["fast", "scalar"])
def test_fig1d_within_tolerance(fast_lane):
    result = run_fig1_distributed(duration=30.0, fast_lane=fast_lane)
    assert result.ok, (
        f"fig1d fast_lane={fast_lane}: endpoint={result.endpoint} "
        f"coordinated={result.coordinated}"
    )


@pytest.mark.parametrize("run_fig", [run_fig6, run_fig7],
                         ids=["fig6", "fig7"])
@pytest.mark.parametrize("fast_lane", [True, False],
                         ids=["fast", "scalar"])
def test_figure_tolerances_both_lanes(run_fig, fast_lane):
    result = run_fig(duration_scale=SCALE, fast_lane=fast_lane)
    assert result.ok, (
        f"{result.figure} fast_lane={fast_lane} "
        f"deviations: {result.deviations()}"
    )


def test_fast_lane_flag_reaches_clients():
    """The Scenario plumbing actually switches the client lane."""
    from repro.core.agreements import AgreementGraph
    from repro.experiments.harness import Scenario

    g = AgreementGraph()
    g.add_principal("S", capacity=10.0)
    g.add_principal("A")
    for flag in (True, False):
        sc = Scenario(g, fast_lane=flag)
        srv = sc.server("S", "S", 10.0)

        class _Red:
            def handle(self, request, done=None):
                from repro.cluster.client import Redirect
                return Redirect(srv)

        c = sc.client("C", "A", _Red(), rate=10.0)
        assert c.fast_lane is flag
        assert (c._stream is not None) is flag
