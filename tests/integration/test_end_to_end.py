"""Cross-stack integration tests beyond the paper's figures."""

import pytest

from repro.core.agreements import Agreement, AgreementGraph
from repro.experiments.harness import Scenario
from repro.scheduling.window import WindowConfig


def _transitive_graph():
    """A -> B -> C transitive chain with real capacities (Fig 3 shape,
    scaled to server rates)."""
    g = AgreementGraph()
    g.add_principal("A", capacity=100.0)
    g.add_principal("B", capacity=150.0)
    g.add_principal("C", capacity=0.0)
    g.add_agreement(Agreement("A", "B", 0.4, 0.6))
    g.add_agreement(Agreement("B", "C", 0.6, 1.0))
    return g


class TestTransitiveAgreementsEndToEnd:
    def test_c_reaches_transitive_entitlement(self):
        """C owns no servers at all, yet must receive its transitive
        mandatory level (114 req/s) computed through two agreements."""
        sc = Scenario(_transitive_graph(), seed=5)
        sa = sc.server("SA", "A", 100.0)
        sb = sc.server("SB", "B", 150.0)
        r1 = sc.l7("R1", {"A": sa, "B": sb})
        # Everyone floods: contention forces enforcement to matter.
        sc.client("CA", "A", r1, rate=200.0)
        sc.client("CB", "B", r1, rate=200.0)
        sc.client("CC", "C", r1, rate=200.0)
        sc.run(30.0)
        c_rate = sc.meter.mean_rate("C", 10.0, 30.0)
        # MC_C = 1140/1900 scaled: with V=(100,150): M_B = 190,
        # MC_C = 0.6*190 = 114.
        assert c_rate == pytest.approx(114.0, rel=0.1)

    def test_unused_entitlement_flows_back(self):
        """When C is idle its reservation is reusable by A and B — the
        paper's 'resources reserved for j can be used by others'."""
        sc = Scenario(_transitive_graph(), seed=6)
        sa = sc.server("SA", "A", 100.0)
        sb = sc.server("SB", "B", 150.0)
        r1 = sc.l7("R1", {"A": sa, "B": sb})
        sc.client("CA", "A", r1, rate=200.0)
        sc.client("CB", "B", r1, rate=200.0)
        sc.run(30.0)
        total = sc.meter.mean_rate("A", 10.0, 30.0) + sc.meter.mean_rate(
            "B", 10.0, 30.0
        )
        assert total == pytest.approx(250.0, rel=0.08)  # full capacity used


class TestMixedLayerDeployment:
    def test_l7_and_l4_share_one_tree(self, fig6_graph):
        """An L7 redirector and an L4 switch coordinating over the same
        combining tree enforce the aggregate agreement together."""
        sc = Scenario(fig6_graph, seed=7)
        srv = sc.server("S", "S", 320.0)
        r7 = sc.l7("R7", {"S": srv}, n_redirectors=2)
        s4 = sc.l4("R4", {"S": srv}, n_redirectors=2)
        sc.connect_tree(link_delay=0.005)
        # A arrives through the L7 node, B through the L4 node.
        sc.client("CA1", "A", r7, rate=135.0)
        sc.client("CA2", "A", r7, rate=135.0)
        sc.client("CB", "B", s4, rate=135.0)
        sc.run(40.0)
        a = sc.meter.mean_rate("A", 15.0, 40.0)
        b = sc.meter.mean_rate("B", 15.0, 40.0)
        # Same Fig 6 arithmetic: B fully served, A takes the remainder.
        assert b == pytest.approx(135.0, rel=0.1)
        assert a == pytest.approx(185.0, rel=0.1)


class TestCapacityChange:
    def test_server_degradation_reinterprets_agreements(self, fig9_graph):
        """B's server degrades to half capacity mid-run; the dynamic
        manager recomputes access levels (§2.2: 'changes in a principal's
        resource levels affect the amount available to others') and both
        principals' rates adjust to the new arithmetic."""
        from repro.core.dynamic import DynamicAccessManager

        mgr = DynamicAccessManager(fig9_graph)
        sc = Scenario(fig9_graph, seed=13)
        sa = sc.server("SA", "A", 320.0)
        sb = sc.server("SB", "B", 320.0)
        red = sc.l7("R", {"A": sa, "B": sb})
        mgr.subscribe(red.set_access)
        sc.client("CA", "A", red, rate=800.0)
        sc.client("CB", "B", red, rate=400.0)

        def degrade():
            sb.set_capacity(160.0)
            mgr.set_capacity("B", 160.0)

        sc.sim.schedule(20.0, degrade)
        sc.run(40.0)
        # Before: A 480 (own 320 + half of B's 320), B 160.
        assert sc.meter.mean_rate("A", 8.0, 20.0) == pytest.approx(480.0, rel=0.08)
        assert sc.meter.mean_rate("B", 8.0, 20.0) == pytest.approx(160.0, rel=0.1)
        # After: B's 160 splits 80/80; A 320+80=400, B 80.
        assert sc.meter.mean_rate("A", 26.0, 40.0) == pytest.approx(400.0, rel=0.08)
        assert sc.meter.mean_rate("B", 26.0, 40.0) == pytest.approx(80.0, rel=0.15)


class TestRedirectorFailure:
    def test_survivors_unaffected_by_dead_peer(self, fig6_graph):
        """A redirector that stops participating (crash) must not stall the
        combining tree: the root's flush forwards partial rounds and the
        surviving redirectors keep enforcing on the demand they can see."""
        sc = Scenario(fig6_graph, seed=12)
        srv = sc.server("S", "S", 320.0)
        r1 = sc.l7("R1", {"S": srv}, n_redirectors=3)
        r2 = sc.l7("R2", {"S": srv}, n_redirectors=3)
        r3 = sc.l7("R3", {"S": srv}, n_redirectors=3)
        sc.connect_tree(link_delay=0.005, extra_root=True)
        sc.client("CA", "A", r1, rate=270.0)
        sc.client("CB", "B", r2, rate=135.0)
        # R3 carries part of A's load until it "crashes" at t=15: its
        # clients vanish with it, and its protocol node goes silent.
        sc.client("CA3", "A", r3, rate=135.0, windows=[(0.0, 15.0)])

        def crash():
            node = sc.protocol_nodes["R3"]
            node.up_link = None                  # stops reporting
            node.local_supplier = lambda: {}     # and contributes nothing

        sc.sim.schedule(15.0, crash)
        sc.run(40.0)
        # After the crash, B (still under its guarantee) is unaffected and
        # A's surviving redirector absorbs the freed capacity.
        b_after = sc.meter.mean_rate("B", 20.0, 40.0)
        a_after = sc.meter.mean_rate("A", 20.0, 40.0)
        assert b_after == pytest.approx(135.0, rel=0.1)
        assert a_after == pytest.approx(185.0, rel=0.1)


class TestManyRedirectors:
    @pytest.mark.slow
    def test_eight_redirectors_converge(self, fig6_graph):
        """Aggregate enforcement holds when demand is spread over eight
        redirector nodes in a fanout-2 combining tree."""
        sc = Scenario(fig6_graph, seed=8)
        srv = sc.server("S", "S", 320.0)
        reds = [
            sc.l7(f"R{i}", {"S": srv}, n_redirectors=8) for i in range(8)
        ]
        sc.connect_tree(link_delay=0.002, kind="balanced", fanout=2)
        # A's 270 req/s spread over 6 nodes; B's 135 over 2 nodes.
        for i in range(6):
            sc.client(f"CA{i}", "A", reds[i], rate=45.0)
        sc.client("CB0", "B", reds[6], rate=67.5)
        sc.client("CB1", "B", reds[7], rate=67.5)
        sc.run(40.0)
        a = sc.meter.mean_rate("A", 15.0, 40.0)
        b = sc.meter.mean_rate("B", 15.0, 40.0)
        assert b == pytest.approx(135.0, rel=0.1)
        assert a == pytest.approx(185.0, rel=0.1)


class TestCrossLayerEquivalence:
    def test_fig10_provider_through_l7(self):
        """The provider-income policy is layer-agnostic: running the Fig 10
        scenario through the L7 redirector (not the paper's L4 switch)
        yields the same phase-1 split (A 512, B 128)."""
        g = AgreementGraph()
        g.add_principal("P", capacity=640.0)
        g.add_principal("A")
        g.add_principal("B")
        g.add_agreement(Agreement("P", "A", 0.8, 1.0))
        g.add_agreement(Agreement("P", "B", 0.2, 1.0))
        sc = Scenario(g, seed=11)
        s1 = sc.server("S1", "P", 320.0)
        s2 = sc.server("S2", "P", 320.0)
        red = sc.l7(
            "R", {"P": [s1, s2]}, mode="provider", prices={"A": 2.0, "B": 1.0},
        )
        sc.client("C1", "A", red, rate=400.0)
        sc.client("C2", "A", red, rate=400.0)
        sc.client("C3", "B", red, rate=400.0)
        sc.run(25.0)
        a = sc.meter.mean_rate("A", 8.0, 25.0)
        b = sc.meter.mean_rate("B", 8.0, 25.0)
        assert a == pytest.approx(512.0, rel=0.08)
        assert b == pytest.approx(128.0, rel=0.1)
        # Both provider servers share the load (capacity-weighted WRR).
        s1_rate = sc.meter.mean_rate("server:S1", 8.0, 25.0)
        s2_rate = sc.meter.mean_rate("server:S2", 8.0, 25.0)
        assert s1_rate == pytest.approx(s2_rate, rel=0.1)


class TestWindowSizeRobustness:
    @pytest.mark.parametrize("window_len", [0.05, 0.1, 0.25])
    def test_enforcement_insensitive_to_window(self, fig6_graph, window_len):
        sc = Scenario(fig6_graph, window=WindowConfig(window_len), seed=9)
        srv = sc.server("S", "S", 320.0)
        r1 = sc.l7("R1", {"S": srv})
        sc.client("CA", "A", r1, rate=270.0)
        sc.client("CB", "B", r1, rate=135.0)
        sc.run(25.0)
        b = sc.meter.mean_rate("B", 10.0, 25.0)
        assert b == pytest.approx(135.0, rel=0.12)
