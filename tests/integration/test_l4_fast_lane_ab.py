"""Acceptance A/B: the L4 flow-record fast lane is bit-identical.

Unlike the request-path fast lane (``test_fast_lane_ab.py``), the L4
switch draws no randomness of its own — both lanes run the same quota
arithmetic at the same event times — so the contract here is strict:
per-phase rates and the full per-window admitted-rate series must be
*bit-identical* between the flow-record lane and the per-packet scalar
lane, not merely statistically equivalent.  ``repro check --scenario
fig9|fig10`` enforces the same property via SHA-256 trace digests in CI.
"""

import numpy as np
import pytest

from repro.analysis.replay import l4_replay
from repro.experiments.figures import run_fig9, run_fig10

SCALE = 0.05


@pytest.mark.parametrize("run_fig", [run_fig9, run_fig10],
                         ids=["fig9", "fig10"])
def test_l4_lanes_bit_identical(run_fig):
    fast = run_fig(duration_scale=SCALE, l4_fast_lane=True)
    scalar = run_fig(duration_scale=SCALE, l4_fast_lane=False)
    assert fast.phases == scalar.phases
    assert set(fast.series) == set(scalar.series)
    for key in fast.series:
        ft, fv = fast.series[key]
        st, sv = scalar.series[key]
        assert np.array_equal(ft, st)
        assert np.array_equal(fv, sv)


def test_l4_replay_digests_identical():
    """The CLI harness criterion itself: combined scenario + admission
    digests match across fast x2 / scalar / fast-with-invariants runs."""
    report = l4_replay(figure="fig9", duration_scale=SCALE, seed=0,
                       runs=2, with_invariants=True)
    assert report.identical, report.render()
    assert report.ok, report.render()
