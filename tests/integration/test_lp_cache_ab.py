"""Acceptance A/B: the perf machinery must not change a single result.

The LP solve cache (exact-match keys) and the event-kernel periodic fast
path are pure accelerators — Fig 6/7/9 phase rates must be *bit-identical*
with them enabled or disabled.
"""

import dataclasses

import numpy as np
import pytest

from repro.experiments.figures import run_fig6, run_fig7, run_fig9

SCALE = 0.05


def _flatten(obj):
    """Recursively lower a FigureResult to comparable plain data."""
    if dataclasses.is_dataclass(obj):
        return {
            f.name: _flatten(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {k: _flatten(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_flatten(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tobytes()
    return obj


@pytest.mark.parametrize("run_fig", [run_fig6, run_fig7, run_fig9],
                         ids=["fig6", "fig7", "fig9"])
def test_lp_cache_bit_identical(run_fig):
    on = run_fig(duration_scale=SCALE, lp_cache=True)
    off = run_fig(duration_scale=SCALE, lp_cache=False)
    assert _flatten(on) == _flatten(off)


@pytest.mark.parametrize("run_fig", [run_fig6, run_fig9],
                         ids=["fig6", "fig9"])
def test_fast_periodic_bit_identical(run_fig):
    fast = run_fig(duration_scale=SCALE, fast_periodic=True)
    slow = run_fig(duration_scale=SCALE, fast_periodic=False)
    assert _flatten(fast) == _flatten(slow)


def test_both_accelerators_off_vs_on(run_fig=run_fig9):
    """The full acceptance combination: cache + fast path together."""
    on = run_fig(duration_scale=SCALE, lp_cache=True, fast_periodic=True)
    off = run_fig(duration_scale=SCALE, lp_cache=False, fast_periodic=False)
    assert _flatten(on) == _flatten(off)
    # And the exact phase rates, spelled out, for readable failure output.
    for p_on, p_off in zip(on.phases, off.phases):
        for key in ("A", "B"):
            assert p_on.rate(key) == p_off.rate(key)
