"""Hierarchical reselling at scale, end-to-end through the simulation."""

import pytest

from repro.core.hierarchy import Tier, build_hierarchy, effective_entitlements
from repro.experiments.harness import Scenario


def _deep_tree():
    """ASP (600 req/s) -> 2 resellers -> 6 end customers."""
    asp = Tier("asp", capacity=600.0)
    r1 = asp.child("r1", lb=0.5, ub=0.7)
    r2 = asp.child("r2", lb=0.4, ub=0.6)
    r1.child("c1a", lb=0.4, ub=0.7)
    r1.child("c1b", lb=0.3, ub=0.6)
    r1.child("c1c", lb=0.2, ub=0.5)
    r2.child("c2a", lb=0.5, ub=0.9)
    r2.child("c2b", lb=0.3, ub=0.6)
    r2.child("c2c", lb=0.1, ub=0.4)
    return asp


@pytest.mark.slow
class TestHierarchyEndToEnd:
    def test_every_leaf_guarantee_enforced(self):
        tree = _deep_tree()
        g = build_hierarchy(tree)
        ents = effective_entitlements(tree)
        sc = Scenario(g, seed=14)
        srv = sc.server("S", "asp", 600.0)
        red = sc.l7("R", {"asp": srv})
        for leaf in ents:
            sc.client(f"C_{leaf}", leaf, red, rate=300.0)  # everyone floods
        sc.run(30.0)
        for leaf, (mand, _opt) in ents.items():
            measured = sc.meter.mean_rate(leaf, 10.0, 30.0)
            floor = min(300.0, mand)
            assert measured >= 0.9 * floor, (
                f"{leaf}: {measured:.1f} < transitive guarantee {floor:.1f}"
            )
        total = sum(sc.meter.mean_rate(l, 10.0, 30.0) for l in ents)
        assert total == pytest.approx(600.0, rel=0.05)  # work conserving

    def test_reseller_churn(self):
        """A reseller's customer goes idle; siblings under the *same*
        reseller and the other branch both absorb the slack."""
        tree = _deep_tree()
        g = build_hierarchy(tree)
        sc = Scenario(g, seed=15)
        srv = sc.server("S", "asp", 600.0)
        red = sc.l7("R", {"asp": srv})
        leaves = ["c1a", "c1b", "c1c", "c2a", "c2b", "c2c"]
        for leaf in leaves:
            windows = [(0.0, 20.0)] if leaf == "c2a" else [(0.0, 40.0)]
            sc.client(f"C_{leaf}", leaf, red, rate=300.0, windows=windows)
        sc.run(40.0)
        # c2a held its guarantee while active...
        assert sc.meter.mean_rate("c2a", 8.0, 20.0) >= 0.9 * 120.0
        # ...and after it leaves the capacity is redistributed, keeping the
        # server saturated.
        total_after = sum(
            sc.meter.mean_rate(l, 26.0, 40.0) for l in leaves if l != "c2a"
        )
        assert total_after == pytest.approx(600.0, rel=0.06)
