"""ResilientTree: detection, eviction, healing, rejoin, lossy links."""

import pytest

from repro.coordination.membership import ResilientTree
from repro.coordination.messages import MessageCounter
from repro.coordination.tree import CombiningTree
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultPlan, PartitionFault
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


def build_overlay(ids, kind="balanced", counter=None, loss=0.0, seed=0,
                  heartbeat_period=0.25, **kw):
    sim = Simulator()
    tree = (CombiningTree.balanced(ids, 2) if kind == "balanced"
            else CombiningTree.star(ids))
    overlay = ResilientTree(
        sim, tree, 0.1,
        suppliers={i: (lambda i=i: {"V": 1.0}) for i in ids},
        link_delay=0.005, loss=loss,
        streams=RngStreams(seed), counter=counter,
        heartbeat_period=heartbeat_period, **kw,
    )
    return sim, overlay


def view_of(overlay, nid):
    agg = overlay.node(nid).view.aggregate
    return agg.get("V") if agg is not None else None


class TestHealing:
    def test_interior_crash_keeps_orphans_alive(self):
        # b (children d, e) dies; d/e lose their only heartbeat path but
        # the eviction-time watch links let them announce themselves and
        # rejoin without b ever coming back.
        ids = ["a", "b", "c", "d", "e"]
        sim, overlay = build_overlay(ids)
        sim.run(until=1.0)
        overlay.crash("b")
        sim.run(until=12.0)
        assert "b" not in overlay.tree
        assert "d" in overlay.tree and "e" in overlay.tree
        assert view_of(overlay, "a") == pytest.approx(4.0)  # survivors' sum
        assert view_of(overlay, "d") == pytest.approx(4.0)

    def test_root_crash_promotes_first_child(self):
        ids = ["a", "b", "c", "d", "e"]
        sim, overlay = build_overlay(ids)
        sim.run(until=1.0)
        overlay.crash("a")
        sim.run(until=12.0)
        assert overlay.tree.root == "b"     # deterministic promotion
        assert "a" not in overlay.tree
        for nid in ("b", "c", "d", "e"):
            assert view_of(overlay, nid) == pytest.approx(4.0)

    def test_restart_rejoins_under_original_parent(self):
        ids = ["a", "b", "c", "d", "e"]
        sim, overlay = build_overlay(ids)
        sim.run(until=1.0)
        overlay.crash("e")                  # leaf under b
        sim.run(until=6.0)
        assert "e" not in overlay.tree
        overlay.restart("e")
        sim.run(until=12.0)
        assert "e" in overlay.tree
        assert overlay.tree.parent("e") == "b"
        assert overlay.rejoins == 1
        for nid in ids:
            assert view_of(overlay, nid) == pytest.approx(5.0)

    def test_detached_node_view_goes_stale(self):
        ids = ["a", "b", "c"]
        sim, overlay = build_overlay(ids)
        sim.run(until=1.0)
        overlay.crash("c")
        sim.run(until=12.0)
        node = overlay.node("c")
        assert node.detached
        # Its last view predates the eviction: stale by seconds.
        assert node.view.age(sim.now) > 5.0

    def test_message_count_is_2n_minus_2_after_heal(self):
        # After the overlay re-stabilises, each round costs exactly
        # 2(n-1) protocol messages over the survivors (heartbeats are
        # accounted separately and excluded from ``total``).
        counter = MessageCounter()
        ids = ["a", "b", "c", "d", "e"]
        sim, overlay = build_overlay(ids, counter=counter)
        sim.run(until=1.0)
        overlay.crash("b")
        sim.run(until=10.05)                # healed; mid-round offset
        before = counter.total
        sim.run(until=11.05)                # exactly 10 periods later
        per_round = overlay.tree.messages_per_round()
        assert len(overlay.tree) == 4
        assert counter.total - before == 10 * per_round


class TestRepeatedFailures:
    """Sequential failures: fail, heal, then fail the promoted root.

    Each heal must promote deterministically (the dead node's first
    child) and leave a well-formed overlay whose steady-state round cost
    is exactly 2(n-1) messages over the survivors — the §3.2 invariant
    must hold per round after *every* reconfiguration, not just the
    first.
    """

    IDS = ["a", "b", "c", "d", "e", "f", "g"]

    def _assert_round_invariant(self, sim, overlay, counter, start):
        sim.run(until=start)                 # settle to a mid-round offset
        before = counter.total
        sim.run(until=start + 1.0)           # exactly 10 rounds of 0.1s
        per_round = overlay.tree.messages_per_round()
        assert per_round == 2 * (len(overlay.tree) - 1)
        assert counter.total - before == 10 * per_round

    def test_fail_heal_fail_promoted_root(self):
        counter = MessageCounter()
        sim, overlay = build_overlay(self.IDS, counter=counter)
        sim.run(until=1.0)

        overlay.crash("a")                   # root dies
        sim.run(until=10.05)
        assert overlay.tree.root == "b"      # first child promoted
        assert len(overlay.tree) == 6
        self._assert_round_invariant(sim, overlay, counter, 11.05)

        overlay.crash("b")                   # now fail the promoted root
        sim.run(until=22.05)
        # b's death also silences its subtree (d, e): they are co-evicted
        # in deterministic order, the promotion cascades to c, and the
        # watch links bring d and e straight back under the new root.
        assert overlay.tree.root == "c"
        assert sorted(overlay.tree.nodes) == ["c", "d", "e", "f", "g"]
        assert overlay.reconfigurations == 4    # a, b, d, e evictions
        assert overlay.rejoins == 2             # d, e re-attached
        self._assert_round_invariant(sim, overlay, counter, 23.05)
        for nid in overlay.tree.nodes:       # survivors all converged
            assert view_of(overlay, nid) == pytest.approx(5.0)

    def test_promotion_sequence_replays_identically(self):
        def run_once():
            sim, overlay = build_overlay(self.IDS)
            trace = []
            sim.run(until=1.0)
            overlay.crash("a")
            sim.run(until=10.0)
            trace.append((overlay.tree.root, sorted(overlay.tree.nodes)))
            overlay.crash(overlay.tree.root)
            sim.run(until=20.0)
            trace.append((overlay.tree.root, sorted(overlay.tree.nodes)))
            return trace

        assert run_once() == run_once()


class TestLossyLinks:
    def test_lossy_tree_degrades_without_permanent_eviction(self):
        # 20% loss on every link, drawn from per-link substreams: rounds
        # go partial and suspicions fire, but backoff adapts and the
        # overlay ends the run whole, with views still flowing.
        ids = ["a", "b", "c", "d", "e"]
        sim, overlay = build_overlay(
            ids, loss=0.2, seed=3, failure_timeout=1.5,
        )
        sim.run(until=30.0)
        assert len(overlay.tree) + len(overlay.removed) == 5
        assert len(overlay.tree) >= 4       # at most one node mid-rejoin
        for nid in overlay.tree.nodes:
            v = view_of(overlay, nid)
            assert v is not None and 1.0 <= v <= 5.0

    def test_lossy_runs_replay_bit_identically(self):
        def trace(seed):
            sim, overlay = build_overlay(ids=["a", "b", "c", "d"],
                                         loss=0.3, seed=seed)
            out = []
            sim.every(0.25, lambda: out.append(
                (view_of(overlay, "a"), len(overlay.tree))
            ), start=0.5)
            sim.run(until=15.0)
            return out

        assert trace(1) == trace(1)         # per-link substreams replay
        assert trace(1) != trace(2)         # ...and actually drive draws

    def test_false_suspicion_backs_off_instead_of_evicting(self):
        ids = ["a", "b", "c"]
        sim, overlay = build_overlay(ids, loss=0.35, seed=5,
                                     failure_timeout=0.6)
        sim.run(until=30.0)
        assert overlay.detector.false_suspicions > 0
        # Backoff grew some peer's timeout beyond the base value.
        grown = [
            st.timeout for st in overlay.detector._peers.values()
        ]
        assert max(grown) > 0.6


class TestPartitionInteraction:
    def _stub_world(self, sim, overlay):
        class World:
            _tree_built = True

        world = World()
        world.sim = sim
        world.protocol_links = overlay.links
        world.protocol_nodes = overlay.nodes
        world.membership = overlay
        world.servers = {}
        world.l7_redirectors = {}
        return world

    def test_heal_created_links_respect_active_partitions(self):
        # d is partitioned away; its eviction creates watch links d<->a
        # that cross the *still-active* partition — the injector's link
        # filter must cut them at birth, or the overlay would tunnel
        # heartbeats through the partition and rejoin d early.
        ids = ["a", "b", "c", "d"]
        sim, overlay = build_overlay(ids)
        world = self._stub_world(sim, overlay)
        FaultInjector(world, FaultPlan(events=[PartitionFault(
            at=1.0, until=10.0, groups=(("d",), ("a", "b", "c")),
        )]))
        sim.run(until=6.0)
        assert "d" not in overlay.tree
        assert ("d", "a") in overlay.links          # watch links exist...
        assert not overlay.links[("d", "a")].up     # ...but are cut
        assert not overlay.links[("a", "d")].up
        assert overlay.rejoins == 0                 # no tunnelling
        sim.run(until=20.0)
        assert "d" in overlay.tree                  # heal brought it back
        assert overlay.rejoins == 1
