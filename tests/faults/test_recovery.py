"""End-to-end recovery: degradation floors, liveness ledger, failover,
and bit-identical replay of faulted runs."""

import pytest

from repro.analysis.invariants import InvariantViolation
from repro.analysis.replay import chaos_replay, scenario_digest
from repro.cluster.health import BackendHealthChecker
from repro.core.access import compute_access_levels
from repro.core.agreements import Agreement, AgreementGraph
from repro.coordination.protocol import GlobalView
from repro.experiments.faultmatrix import (
    CONSERVATIVE_B,
    K_WINDOWS,
    fault_matrix_scenario,
    run_fault_matrix,
)
from repro.experiments.harness import Scenario
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultPlan, ServerCrash
from repro.scheduling.allocator import WindowAllocator

from .conftest import build_world


class TestFaultMatrix:
    def test_partition_degrades_then_recovers_within_budget(self):
        # check_invariants=True arms the liveness ledger: admitted rates
        # must be back within eps of the agreed split K_WINDOWS after the
        # heal, or the run raises.
        result = run_fault_matrix(duration_scale=0.4, check_invariants=True)
        assert result.ok, result.deviations()
        # B is held at its conservative floor, not starved...
        held = result.phase("p2_partition").rates["B"]
        assert held >= 0.85 * CONSERVATIVE_B
        # ...and pays for the partition with its optional share.
        assert held < 0.7 * result.phase("p1_agreed").rates["B"]
        assert "evictions=1" in result.notes
        assert "rejoins=1" in result.notes

    def test_partitioned_redirector_counts_degraded_windows(self):
        sc, _, (t1, t2, end) = fault_matrix_scenario(duration_scale=0.4)
        degraded = sc.l7_redirectors["R2"].allocator.degraded_windows
        # Windows are 0.1 s; the view goes stale ~1 s into the partition.
        assert degraded * sc.window.length > 0.5 * (t2 - t1 - 2.0)
        # R1 stays coordinated throughout (the root is on its side).
        assert sc.l7_redirectors["R1"].allocator.degraded_windows == 0

    def test_liveness_ledger_catches_non_recovery(self):
        # A quota no run can meet: the ledger must raise at its deadline.
        sc = build_world(check_invariants=True)
        sc.invariants.arm_liveness(
            sc.sim, sc.meter, {"A": 500.0}, heal_at=2.0,
            k_windows=K_WINDOWS, window=sc.window.length,
        )
        with pytest.raises(InvariantViolation, match="liveness"):
            sc.run(8.0)

    def test_liveness_ledger_validates_arguments(self):
        sc = build_world(check_invariants=True)
        with pytest.raises(ValueError):
            sc.invariants.arm_liveness(
                sc.sim, sc.meter, {"A": 1.0}, heal_at=1.0,
                k_windows=0, window=0.1,
            )


class TestDegradedAllocator:
    def _allocator(self):
        g = AgreementGraph()
        g.add_principal("S", capacity=100.0)
        g.add_principal("A")
        g.add_agreement(Agreement("S", "A", 0.5, 1.0))
        alloc = WindowAllocator(
            compute_access_levels(g), n_redirectors=2, stale_after=1.0,
        )

        class Node:
            view = GlobalView()

        alloc.attach(Node())
        return alloc, Node

    def test_stale_view_snaps_to_conservative(self):
        alloc, node = self._allocator()
        from repro.coordination.aggregation import VectorAggregate

        node.view.aggregate = VectorAggregate.local({"A": 4.0})
        node.view.received_at = 0.0
        fresh = alloc.compute({"A": 4.0}, now=0.5)
        assert not fresh.used_fallback
        stale = alloc.compute({"A": 4.0}, now=2.0)   # age 2.0 > stale_after
        assert stale.used_fallback
        assert alloc.degraded_windows == 1
        # Conservative 1/R: half of A's mandatory per-window entitlement.
        assert stale.quotas["A"] < fresh.quotas["A"]

    def test_stale_after_validated(self):
        g = AgreementGraph()
        g.add_principal("S", capacity=10.0)
        with pytest.raises(ValueError, match="stale_after"):
            WindowAllocator(compute_access_levels(g), stale_after=0.0)


class TestBackendFailover:
    def test_l7_routes_around_dead_backend(self):
        g = AgreementGraph()
        g.add_principal("S", capacity=80.0)
        g.add_principal("A")
        g.add_agreement(Agreement("S", "A", 1.0, 1.0))
        sc = Scenario(g, seed=0, bin_width=0.25)
        s1 = sc.server("S1", "S", 40.0)
        s2 = sc.server("S2", "S", 40.0)
        health = BackendHealthChecker(sc.sim, [s1, s2], probe_interval=0.05)
        r1 = sc.l7("R1", {"S": [s1, s2]}, health=health)
        sc.connect_tree(link_delay=0.005)
        sc.client("C1", "A", r1, rate=30.0)
        injector = FaultInjector(sc, FaultPlan(events=[ServerCrash(
            at=2.0, until=5.0, server="S1",
        )]))
        sc.run(8.0)
        # Once S1 is out of rotation all load lands on S2: no drops
        # beyond the pre-detection blip, and S2 carries the outage.
        times, rates = sc.meter.series("A")
        mid = [r for t, r in zip(times, rates) if 2.5 <= t <= 4.5]
        assert min(mid) >= 20.0              # service continued on S2
        assert sum(mid) / len(mid) >= 26.0   # ~full rate through the outage
        assert s2.completed["A"] > s1.completed["A"]
        assert health.marked_down == 1 and health.marked_up == 1


class TestChaosReplay:
    def test_faulted_run_replays_bit_identically(self):
        report = chaos_replay(duration_scale=0.4, runs=2,
                              with_invariants=True)
        assert report.identical and report.ok
        assert len(set(report.digests)) == 1
        assert report.checker_summary["violations"] == 0
        assert report.meta["plan_digest"]

    def test_digest_covers_fault_ledgers(self):
        sc1, _, _ = fault_matrix_scenario(duration_scale=0.4)
        sc2, _, _ = fault_matrix_scenario(duration_scale=0.4, seed=1)
        assert scenario_digest(sc1) != scenario_digest(sc2)
