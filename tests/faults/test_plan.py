"""FaultPlan: validation, serialisation, digests, random generation."""

import pytest

from repro.faults.plan import (
    FaultPlan,
    FaultPlanError,
    LinkDegrade,
    NodeCrash,
    PartitionFault,
    RedirectorCrash,
    ServerCrash,
    ShardRevoke,
    random_plan,
)
from repro.sim.rng import RngStreams


def _full_plan() -> FaultPlan:
    return FaultPlan(
        events=[
            LinkDegrade(at=1.0, src="a", dst="b", loss=0.3, delay=0.2,
                        until=4.0),
            PartitionFault(at=2.0, until=5.0, groups=(("a",), ("b", "c"))),
            NodeCrash(at=3.0, node="c", until=6.0),
            ServerCrash(at=3.5, server="S"),
            RedirectorCrash(at=4.5, redirector="R1", until=7.0),
            ShardRevoke(at=5.0, shard=1, mode="exc"),
        ],
        name="everything",
    )


class TestValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            FaultPlan(events=[NodeCrash(at=-1.0, node="a")])

    def test_until_before_at_rejected(self):
        with pytest.raises(ValueError, match="until"):
            FaultPlan(events=[NodeCrash(at=2.0, node="a", until=1.0)])

    def test_partition_needs_two_groups(self):
        with pytest.raises(ValueError, match="two groups"):
            FaultPlan(events=[PartitionFault(at=0.0, until=1.0,
                                             groups=(("a", "b"),))])

    def test_node_in_two_groups_rejected(self):
        with pytest.raises(ValueError, match="two partition groups"):
            FaultPlan(events=[PartitionFault(
                at=0.0, until=1.0, groups=(("a",), ("a", "b")),
            )])

    def test_probability_range_enforced(self):
        with pytest.raises(ValueError, match="loss"):
            FaultPlan(events=[LinkDegrade(at=0.0, src="a", dst="b", loss=1.0)])

    def test_validation_errors_are_typed(self):
        # The CLI maps FaultPlanError to exit 2; every validation failure
        # must be that type (it subclasses ValueError for compatibility).
        with pytest.raises(FaultPlanError):
            FaultPlan(events=[NodeCrash(at=-1.0, node="a")])


class TestShardRevoke:
    def test_valid_modes_accepted(self):
        for mode in ("exit", "exc", "kill"):
            plan = FaultPlan(events=[ShardRevoke(at=1.0, shard=0, mode=mode)])
            assert plan.events[0].mode == mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(FaultPlanError, match="mode"):
            FaultPlan(events=[ShardRevoke(at=1.0, shard=0, mode="vaporise")])

    def test_negative_shard_rejected(self):
        with pytest.raises(FaultPlanError, match="shard"):
            FaultPlan(events=[ShardRevoke(at=1.0, shard=-1)])

    def test_json_round_trip(self):
        plan = FaultPlan(events=[ShardRevoke(at=2.5, shard=3)])
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan
        assert again.events[0].mode == "kill"   # the default

    def test_injector_refuses_revoke_shard(self):
        # ShardRevoke is an execution-substrate fault; binding it to a
        # simulated scenario must fail loudly, not be silently ignored.
        from repro.faults.inject import FaultInjector

        plan = FaultPlan(events=[ShardRevoke(at=1.0, shard=0)])
        with pytest.raises(FaultPlanError, match="sharded execution lane"):
            FaultInjector(object(), plan)


class TestPartitionGeometry:
    def test_crosses_only_between_groups(self):
        ev = PartitionFault(at=0.0, until=1.0, groups=(("a",), ("b", "c")))
        assert ev.crosses("a", "b")
        assert ev.crosses("c", "a")
        assert not ev.crosses("b", "c")

    def test_unnamed_nodes_unaffected(self):
        ev = PartitionFault(at=0.0, until=1.0, groups=(("a",), ("b",)))
        assert not ev.crosses("a", "elsewhere")
        assert not ev.crosses("elsewhere", "b")


class TestSerialisation:
    def test_json_round_trip_all_kinds(self):
        plan = _full_plan()
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan
        assert again.digest() == plan.digest()

    def test_digest_names_a_plan_exactly(self):
        base = _full_plan()
        shifted = FaultPlan(
            events=base.events[:-1] + [
                RedirectorCrash(at=4.6, redirector="R1", until=7.0)
            ],
            name=base.name,
        )
        assert shifted.digest() != base.digest()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.from_dict({"events": [{"kind": "meteor", "at": 0.0}]})

    def test_sorted_events_and_horizon(self):
        plan = _full_plan()
        times = [ev.at for ev in plan.sorted_events()]
        assert times == sorted(times)
        assert plan.horizon == 7.0
        assert FaultPlan().horizon == 0.0


class TestRandomPlan:
    def test_same_substream_same_plan(self):
        kw = dict(duration=30.0, nodes=("a", "b", "c"), servers=("S",),
                  links=(("a", "b"),), n_faults=8)
        p1 = random_plan(RngStreams(7).get("faults:plan"), **kw)
        p2 = random_plan(RngStreams(7).get("faults:plan"), **kw)
        assert p1.digest() == p2.digest()
        p3 = random_plan(RngStreams(8).get("faults:plan"), **kw)
        assert p3.digest() != p1.digest()

    def test_targets_come_from_the_given_sets(self):
        plan = random_plan(
            RngStreams(0).get("faults:plan"), duration=40.0,
            nodes=("a", "b"), servers=("S",), links=(("a", "b"),),
            n_faults=20,
        )
        assert len(plan.events) == 20
        for ev in plan.events:
            assert ev.at >= 1.0
            if isinstance(ev, NodeCrash):
                assert ev.node in ("a", "b")
            elif isinstance(ev, ServerCrash):
                assert ev.server == "S"
            elif isinstance(ev, LinkDegrade):
                assert (ev.src, ev.dst) == ("a", "b")
                assert 0.0 <= ev.loss < 1.0

    def test_no_targets_rejected(self):
        with pytest.raises(ValueError, match="no fault targets"):
            random_plan(RngStreams(0).get("faults:plan"), duration=10.0)
