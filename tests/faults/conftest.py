"""Shared world builders for the chaos tier.

``small_world`` is a reduced fig8-style scenario — one 80 req/s server,
principal A (mandatory 0.75) at R1, principal B (mandatory 0.25) at R2,
a dedicated aggregator root, resilient tree — small enough that a dozen
fault tests stay fast while still exercising the full stack the injector
touches.
"""

import pytest

from repro.core.agreements import Agreement, AgreementGraph
from repro.experiments.harness import Scenario


def build_world(check_invariants=False, heartbeat_period=0.25, **tree_kw):
    g = AgreementGraph()
    g.add_principal("S", capacity=80.0)
    g.add_principal("A")
    g.add_principal("B")
    g.add_agreement(Agreement("S", "A", 0.75, 1.0))
    g.add_agreement(Agreement("S", "B", 0.25, 1.0))
    sc = Scenario(g, seed=0, bin_width=0.25,
                  check_invariants=check_invariants)
    server = sc.server("S", "S", 80.0)
    r1 = sc.l7("R1", {"S": server}, n_redirectors=2, stale_after=1.0)
    r2 = sc.l7("R2", {"S": server}, n_redirectors=2, stale_after=1.0)
    tree_kw.setdefault("link_delay", 0.01)
    tree_kw.setdefault("extra_root", True)
    tree_kw.setdefault("resilient", True)
    sc.connect_tree(heartbeat_period=heartbeat_period, **tree_kw)
    sc.client("C1", "A", r1, rate=50.0)
    sc.client("C2", "B", r2, rate=50.0)
    return sc


@pytest.fixture
def world():
    return build_world()
