"""FaultInjector: link impairment, partitions, crashes, target validation."""

import pytest

from repro.faults.inject import FaultInjector
from repro.faults.plan import (
    FaultPlan,
    LinkDegrade,
    NodeCrash,
    PartitionFault,
    RedirectorCrash,
    ServerCrash,
)

from .conftest import build_world


class TestSetup:
    def test_requires_connect_tree(self):
        class Bare:
            _tree_built = False

        plan = FaultPlan(events=[PartitionFault(
            at=1.0, until=2.0, groups=(("a",), ("b",)),
        )])
        with pytest.raises(RuntimeError, match="connect_tree"):
            FaultInjector(Bare(), plan)

    @pytest.mark.parametrize("event,message", [
        (NodeCrash(at=1.0, node="nope"), "unknown protocol node"),
        (ServerCrash(at=1.0, server="nope"), "unknown server"),
        (RedirectorCrash(at=1.0, redirector="nope"), "unknown redirector"),
        (LinkDegrade(at=1.0, src="R1", dst="R2"), "unknown link"),
    ])
    def test_unknown_targets_rejected(self, world, event, message):
        with pytest.raises(ValueError, match=message):
            FaultInjector(world, FaultPlan(events=[event]))


class TestLinkDegrade:
    def test_applies_and_reverts_symmetrically(self, world):
        fwd = world.protocol_links[("R1", "__root__")]
        rev = world.protocol_links[("__root__", "R1")]
        before = (fwd.loss, fwd.delay, rev.loss, rev.delay)
        FaultInjector(world, FaultPlan(events=[LinkDegrade(
            at=1.0, until=2.0, src="R1", dst="__root__",
            loss=0.4, delay=0.3,
        )]))
        world.sim.run(until=1.5)
        assert (fwd.loss, fwd.delay) == (0.4, 0.3)
        assert (rev.loss, rev.delay) == (0.4, 0.3)
        world.sim.run(until=2.5)
        assert (fwd.loss, fwd.delay, rev.loss, rev.delay) == before

    def test_asymmetric_touches_one_direction(self, world):
        rev = world.protocol_links[("__root__", "R1")]
        FaultInjector(world, FaultPlan(events=[LinkDegrade(
            at=1.0, src="R1", dst="__root__", loss=0.4, symmetric=False,
        )]))
        world.sim.run(until=1.5)
        assert world.protocol_links[("R1", "__root__")].loss == 0.4
        assert rev.loss == 0.0


class TestPartitions:
    def test_cuts_crossing_links_and_heals(self, world):
        FaultInjector(world, FaultPlan(events=[PartitionFault(
            at=1.0, until=2.0, groups=(("R2",), ("__root__", "R1")),
        )]))
        world.sim.run(until=1.5)
        assert not world.protocol_links[("R2", "__root__")].up
        assert not world.protocol_links[("__root__", "R2")].up
        assert world.protocol_links[("R1", "__root__")].up
        world.sim.run(until=2.5)
        assert all(link.up for link in world.protocol_links.values())

    def test_overlapping_partitions_refcount(self, world):
        # The shared link heals only when the *last* partition lifts.
        FaultInjector(world, FaultPlan(events=[
            PartitionFault(at=1.0, until=3.0,
                           groups=(("R2",), ("__root__", "R1"))),
            PartitionFault(at=2.0, until=4.0, groups=(("R2",), ("__root__",))),
        ]))
        link = world.protocol_links[("R2", "__root__")]
        world.sim.run(until=3.5)
        assert not link.up          # first heal passed, second still active
        world.sim.run(until=4.5)
        assert link.up

    def test_log_records_the_timeline(self, world):
        injector = FaultInjector(world, FaultPlan(events=[PartitionFault(
            at=1.0, until=2.0, groups=(("R2",), ("__root__", "R1")),
        )]))
        world.sim.run(until=3.0)
        kinds = [kind for _, kind, _ in injector.log]
        assert kinds == ["partition", "heal"]


class TestCrashes:
    def test_server_crash_refuses_then_recovers(self, world):
        server = world.servers["S"]
        FaultInjector(world, FaultPlan(events=[ServerCrash(
            at=1.0, until=2.0, server="S",
        )]))
        world.sim.run(until=1.5)
        assert not server.alive
        world.sim.run(until=6.0)
        assert server.alive
        assert server.refused > 0           # work arrived while it was down
        done_mid = server.completed.copy()
        world.sim.run(until=8.0)
        assert sum(server.completed.values()) > sum(done_mid.values())

    def test_redirector_crash_silences_node_and_drops(self, world):
        red = world.l7_redirectors["R2"]
        node = world.protocol_nodes["R2"]
        FaultInjector(world, FaultPlan(events=[RedirectorCrash(
            at=1.0, until=3.0, redirector="R2",
        )]))
        world.sim.run(until=2.0)
        assert not red.alive and not node.alive
        world.sim.run(until=4.0)
        assert red.alive and node.alive

    def test_node_crash_routes_through_membership(self, world):
        FaultInjector(world, FaultPlan(events=[NodeCrash(
            at=1.0, until=4.0, node="R2",
        )]))
        world.sim.run(until=3.5)
        assert not world.protocol_nodes["R2"].alive
        assert "R2" not in world.tree        # evicted by the detector
        world.sim.run(until=8.0)
        assert world.protocol_nodes["R2"].alive
        assert "R2" in world.tree            # heartbeats brought it back
        assert world.membership.rejoins == 1
