"""Validate the server model against M/D/1 queueing theory.

The capacity server is a deterministic-service single queue; with Poisson
arrivals it is an M/D/1 system whose mean waiting time has the closed form

    W_q = rho / (2 mu (1 - rho))        (Pollaczek-Khinchine, D service)

Matching the theory is strong evidence the simulation kernel's timing is
right (arrival process, FIFO queue, service scheduling).
"""

import numpy as np
import pytest

from repro.cluster.request import Request
from repro.cluster.server import Server
from repro.sim.engine import Simulator


@pytest.mark.parametrize("rho", [0.3, 0.5, 0.7])
def test_md1_mean_wait(rho):
    mu = 100.0                 # service rate (req/s)
    lam = rho * mu             # arrival rate
    sim = Simulator()
    srv = Server(sim, "S", capacity=mu)
    rng = np.random.default_rng(42)
    waits = []

    def arrivals():
        while sim.now < 400.0:
            r = Request(principal="A", client_id="c", created_at=sim.now)
            service = 1.0 / mu
            srv.submit(
                r,
                done=lambda req, s=service: waits.append(
                    req.completed_at - req.created_at - s
                ),
            )
            yield float(rng.exponential(1.0 / lam))

    sim.process(arrivals())
    sim.run(until=400.0)

    measured = float(np.mean(waits[len(waits) // 5:]))
    theory = rho / (2 * mu * (1 - rho))
    assert measured == pytest.approx(theory, rel=0.12), (
        f"rho={rho}: measured {measured * 1000:.2f} ms vs "
        f"M/D/1 theory {theory * 1000:.2f} ms"
    )


def test_utilization_matches_rho():
    mu, rho = 200.0, 0.6
    sim = Simulator()
    srv = Server(sim, "S", capacity=mu)
    rng = np.random.default_rng(7)

    def arrivals():
        while sim.now < 100.0:
            srv.submit(Request(principal="A", client_id="c", created_at=sim.now))
            yield float(rng.exponential(1.0 / (rho * mu)))

    sim.process(arrivals())
    sim.run(until=100.0)
    assert srv.utilization() == pytest.approx(rho, rel=0.05)
