import numpy as np
import pytest

from repro.sim.stats import StreamingStats


class TestMoments:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        xs = rng.lognormal(0.0, 1.5, size=5000)
        st = StreamingStats(reservoir=0)
        for x in xs:
            st.add(float(x))
        assert st.count == 5000
        assert st.mean == pytest.approx(xs.mean(), rel=1e-12)
        assert st.variance == pytest.approx(xs.var(ddof=1), rel=1e-9)
        assert st.std == pytest.approx(xs.std(ddof=1), rel=1e-9)
        assert st.min == xs.min()
        assert st.max == xs.max()

    def test_empty_and_single(self):
        st = StreamingStats()
        assert st.count == 0
        assert st.variance == 0.0
        st.add(3.0)
        assert st.mean == 3.0
        assert st.variance == 0.0

    def test_bad_reservoir(self):
        with pytest.raises(ValueError):
            StreamingStats(reservoir=-1)


class TestReservoir:
    def test_exact_under_capacity(self):
        st = StreamingStats(reservoir=100)
        xs = [float(i) for i in range(80)]
        for x in xs:
            st.add(x)
        assert st.samples == xs
        assert st.tail_values(20) == xs[20:]
        assert st.percentile(50) == pytest.approx(39.5)

    def test_bounded_beyond_capacity(self):
        st = StreamingStats(reservoir=64)
        for i in range(10_000):
            st.add(float(i))
        assert len(st.samples) == 64
        assert st.count == 10_000

    def test_reservoir_is_representative(self):
        # Uniform stream: the reservoir median should sit near the true
        # median, well within a tolerance that catches index-bias bugs.
        st = StreamingStats(reservoir=512, seed=9)
        for i in range(50_000):
            st.add(float(i))
        assert st.percentile(50) == pytest.approx(25_000, rel=0.15)

    def test_deterministic(self):
        def fill(seed):
            st = StreamingStats(reservoir=32, seed=seed)
            for i in range(1000):
                st.add(float(i))
            return st.samples

        assert fill(5) == fill(5)
        assert fill(5) != fill(6)

    def test_tail_values_after_replacement(self):
        st = StreamingStats(reservoir=16)
        for i in range(1000):
            st.add(float(i))
        # Every surviving sample knows its original index: trimming warm-up
        # keeps only late observations.
        assert all(v >= 500.0 for v in st.tail_values(500))

    def test_zero_reservoir_keeps_moments_only(self):
        st = StreamingStats(reservoir=0)
        for i in range(100):
            st.add(float(i))
        assert st.samples == []
        assert st.percentile(50) is None
        assert st.mean == pytest.approx(49.5)


class TestUpdateMany:
    def test_bitwise_equivalence_with_scalar_add(self):
        # The columnar lane's contract: update_many(xs) IS `for x: add(x)`,
        # down to the last float bit — moments, extrema, and the reservoir's
        # xorshift replacement stream all replay identically.
        rng = np.random.default_rng(3)
        xs = rng.lognormal(0.0, 1.0, size=4000)
        scalar = StreamingStats(reservoir=64, seed=7)
        for x in xs:
            scalar.add(float(x))
        batched = StreamingStats(reservoir=64, seed=7)
        batched.update_many(xs)
        assert batched.count == scalar.count
        assert batched.mean == scalar.mean
        assert batched.variance == scalar.variance
        assert batched.min == scalar.min
        assert batched.max == scalar.max
        assert batched.samples == scalar.samples

    def test_batch_split_invariance(self):
        rng = np.random.default_rng(4)
        xs = rng.exponential(2.0, size=3000)
        whole = StreamingStats(reservoir=32, seed=1)
        whole.update_many(xs)
        split = StreamingStats(reservoir=32, seed=1)
        for chunk in np.array_split(xs, 13):
            split.update_many(chunk)
        assert split.mean == whole.mean
        assert split.variance == whole.variance
        assert split.samples == whole.samples

    def test_interleaves_with_scalar_add(self):
        rng = np.random.default_rng(5)
        xs = rng.uniform(0.0, 9.0, size=500)
        a = StreamingStats(reservoir=16, seed=2)
        for x in xs:
            a.add(float(x))
        b = StreamingStats(reservoir=16, seed=2)
        b.update_many(xs[:200])
        for x in xs[200:300]:
            b.add(float(x))
        b.update_many(xs[300:])
        assert (b.count, b.mean, b.variance) == (a.count, a.mean, a.variance)
        assert b.samples == a.samples

    def test_weighted_moments_match_repetition(self):
        vals = [1.5, 2.0, 8.0, 0.25]
        weights = [3, 1, 2, 5]
        repeated = StreamingStats(reservoir=0)
        for v, w in zip(vals, weights):
            for _ in range(w):
                repeated.add(v)
        weighted = StreamingStats(reservoir=0)
        weighted.update_many(vals, weights=weights)
        assert weighted.count == repeated.count
        assert weighted.mean == pytest.approx(repeated.mean, rel=1e-12)
        assert weighted.variance == pytest.approx(repeated.variance, rel=1e-12)

    def test_zero_weights_skipped(self):
        st = StreamingStats(reservoir=0)
        st.update_many([1.0, 99.0, 2.0], weights=[1.0, 0.0, 1.0])
        assert st.mean == pytest.approx(1.5)
        assert st.max == 2.0

    def test_empty_batch_noop(self):
        st = StreamingStats()
        st.update_many([])
        assert st.count == 0

    def test_bad_weights(self):
        st = StreamingStats()
        with pytest.raises(ValueError):
            st.update_many([1.0, 2.0], weights=[1.0])
        with pytest.raises(ValueError):
            st.update_many([1.0], weights=[-2.0])
