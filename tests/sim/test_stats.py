import numpy as np
import pytest

from repro.sim.stats import StreamingStats


class TestMoments:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        xs = rng.lognormal(0.0, 1.5, size=5000)
        st = StreamingStats(reservoir=0)
        for x in xs:
            st.add(float(x))
        assert st.count == 5000
        assert st.mean == pytest.approx(xs.mean(), rel=1e-12)
        assert st.variance == pytest.approx(xs.var(ddof=1), rel=1e-9)
        assert st.std == pytest.approx(xs.std(ddof=1), rel=1e-9)
        assert st.min == xs.min()
        assert st.max == xs.max()

    def test_empty_and_single(self):
        st = StreamingStats()
        assert st.count == 0
        assert st.variance == 0.0
        st.add(3.0)
        assert st.mean == 3.0
        assert st.variance == 0.0

    def test_bad_reservoir(self):
        with pytest.raises(ValueError):
            StreamingStats(reservoir=-1)


class TestReservoir:
    def test_exact_under_capacity(self):
        st = StreamingStats(reservoir=100)
        xs = [float(i) for i in range(80)]
        for x in xs:
            st.add(x)
        assert st.samples == xs
        assert st.tail_values(20) == xs[20:]
        assert st.percentile(50) == pytest.approx(39.5)

    def test_bounded_beyond_capacity(self):
        st = StreamingStats(reservoir=64)
        for i in range(10_000):
            st.add(float(i))
        assert len(st.samples) == 64
        assert st.count == 10_000

    def test_reservoir_is_representative(self):
        # Uniform stream: the reservoir median should sit near the true
        # median, well within a tolerance that catches index-bias bugs.
        st = StreamingStats(reservoir=512, seed=9)
        for i in range(50_000):
            st.add(float(i))
        assert st.percentile(50) == pytest.approx(25_000, rel=0.15)

    def test_deterministic(self):
        def fill(seed):
            st = StreamingStats(reservoir=32, seed=seed)
            for i in range(1000):
                st.add(float(i))
            return st.samples

        assert fill(5) == fill(5)
        assert fill(5) != fill(6)

    def test_tail_values_after_replacement(self):
        st = StreamingStats(reservoir=16)
        for i in range(1000):
            st.add(float(i))
        # Every surviving sample knows its original index: trimming warm-up
        # keeps only late observations.
        assert all(v >= 500.0 for v in st.tail_values(500))

    def test_zero_reservoir_keeps_moments_only(self):
        st = StreamingStats(reservoir=0)
        for i in range(100):
            st.add(float(i))
        assert st.samples == []
        assert st.percentile(50) is None
        assert st.mean == pytest.approx(49.5)
