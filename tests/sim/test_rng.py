import numpy as np

from repro.sim.rng import RngStreams


class TestRngStreams:
    def test_same_name_same_stream(self):
        s = RngStreams(1)
        assert s.get("a") is s.get("a")

    def test_different_names_independent(self):
        s = RngStreams(1)
        a = s.get("a").random(100)
        b = s.get("b").random(100)
        assert not np.allclose(a, b)

    def test_reproducible_across_factories(self):
        x = RngStreams(7).get("client:A").random(50)
        y = RngStreams(7).get("client:A").random(50)
        np.testing.assert_allclose(x, y)

    def test_seed_changes_streams(self):
        x = RngStreams(1).get("a").random(50)
        y = RngStreams(2).get("a").random(50)
        assert not np.allclose(x, y)

    def test_adding_stream_does_not_perturb_existing(self):
        s1 = RngStreams(3)
        a_only = s1.get("a").random(20)
        s2 = RngStreams(3)
        s2.get("zzz")          # extra stream created first
        a_after = s2.get("a").random(20)
        np.testing.assert_allclose(a_only, a_after)

    def test_spawn_is_independent(self):
        parent = RngStreams(5)
        child = parent.spawn("worker")
        p = parent.get("x").random(50)
        c = child.get("x").random(50)
        assert not np.allclose(p, c)
