import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.network import Endpoint, Link


class Sink(Endpoint):
    def __init__(self, sim):
        self.sim = sim
        self.received = []

    def on_message(self, msg, sender):
        self.received.append((self.sim.now, msg))


class TestLink:
    def test_delay(self):
        sim = Simulator()
        src, dst = Sink(sim), Sink(sim)
        link = Link(sim, src, dst, delay=0.5)
        link.send("hello")
        sim.run()
        assert dst.received == [(0.5, "hello")]

    def test_counters(self):
        sim = Simulator()
        link = Link(sim, Sink(sim), Sink(sim), delay=0.1)
        for i in range(5):
            link.send(i)
        assert link.sent == 5
        sim.run()
        assert link.delivered == 5

    def test_fifo_under_jitter(self):
        sim = Simulator()
        dst = Sink(sim)
        rng = np.random.default_rng(0)
        link = Link(sim, Sink(sim), dst, delay=0.1, jitter=0.5, rng=rng)
        for i in range(50):
            sim.schedule(i * 0.01, link.send, i)
        sim.run()
        got = [msg for _, msg in dst.received]
        assert got == list(range(50))  # never reordered

    def test_jitter_requires_rng(self):
        sim = Simulator()
        link = Link(sim, Sink(sim), Sink(sim), delay=0.1, jitter=0.2)
        with pytest.raises(ValueError):
            link.send("x")

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, Sink(sim), Sink(sim), delay=-1.0)

    def test_loss(self):
        sim = Simulator()
        dst = Sink(sim)
        rng = np.random.default_rng(1)
        link = Link(sim, Sink(sim), dst, delay=0.0, loss=0.3, rng=rng)
        for i in range(2000):
            link.send(i)
        sim.run()
        assert link.lost == pytest.approx(600, rel=0.15)
        assert link.delivered == link.sent - link.lost

    def test_loss_requires_rng(self):
        sim = Simulator()
        link = Link(sim, Sink(sim), Sink(sim), loss=0.5)
        with pytest.raises(ValueError):
            link.send("x")

    def test_invalid_loss(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, Sink(sim), Sink(sim), loss=1.0)

    def test_on_deliver_hook(self):
        sim = Simulator()
        seen = []
        link = Link(sim, Sink(sim), Sink(sim), delay=0.0, on_deliver=seen.append)
        link.send("x")
        sim.run()
        assert seen == ["x"]
