import pytest

from repro.sim.engine import (
    Event, Interrupt, PeriodicTimer, Simulator, SimulationError, Timer,
)


class TestScheduling:
    def test_callbacks_in_time_order(self):
        sim = Simulator()
        out = []
        sim.schedule(2.0, out.append, "b")
        sim.schedule(1.0, out.append, "a")
        sim.schedule(3.0, out.append, "c")
        sim.run()
        assert out == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        sim = Simulator()
        out = []
        for tag in "abc":
            sim.schedule(1.0, out.append, tag)
        sim.run()
        assert out == ["a", "b", "c"]

    def test_equal_time_events_pop_in_push_order_bulk(self):
        # SIM004 regression: with many same-timestamp entries, pop order
        # must be exactly push order — the heap's seq tie-breaker is the
        # only thing standing between this and comparing callbacks.
        sim = Simulator()
        out = []
        order = [7, 3, 11, 0, 5, 2, 9, 1, 8, 4, 10, 6] * 25
        for i, tag in enumerate(order):
            sim.schedule(1.0 if i % 2 else 1.0 + 0.0, out.append, (tag, i))
        sim.run()
        assert out == [(tag, i) for i, tag in enumerate(order)]

    def test_schedule_at_ties_interleave_with_schedule(self):
        sim = Simulator()
        out = []
        sim.schedule(2.0, out.append, "rel")
        sim.schedule_at(2.0, out.append, "abs")
        sim.schedule(2.0, out.append, "rel2")
        sim.run()
        assert out == ["rel", "abs", "rel2"]

    def test_run_until_stops_clock(self):
        sim = Simulator()
        out = []
        sim.schedule(5.0, out.append, "late")
        sim.run(until=2.0)
        assert out == []
        assert sim.now == 2.0
        sim.run(until=10.0)
        assert out == ["late"]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at(self):
        sim = Simulator()
        hits = []
        sim.schedule_at(4.0, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [4.0]

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_run_not_reentrant(self):
        sim = Simulator()

        def nested():
            sim.run()

        sim.schedule(0.0, nested)
        with pytest.raises(SimulationError, match="reentrant"):
            sim.run()

    def test_peek(self):
        sim = Simulator()
        assert sim.peek() is None
        sim.schedule(3.0, lambda: None)
        assert sim.peek() == 3.0


class TestProcesses:
    def test_delay_yield(self):
        sim = Simulator()
        marks = []

        def proc():
            yield 1.0
            marks.append(sim.now)
            yield 2.5
            marks.append(sim.now)

        sim.process(proc())
        sim.run()
        assert marks == [1.0, 3.5]

    def test_process_return_value(self):
        sim = Simulator()

        def proc():
            yield 1.0
            return 42

        p = sim.process(proc())
        sim.run()
        assert not p.alive
        assert p.value == 42

    def test_wait_on_event(self):
        sim = Simulator()
        ev = sim.event("go")
        got = []

        def waiter():
            value = yield ev
            got.append((sim.now, value))

        sim.process(waiter())
        sim.schedule(2.0, ev.succeed, "payload")
        sim.run()
        assert got == [(2.0, "payload")]

    def test_wait_on_already_triggered_event(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("early")
        got = []

        def waiter():
            got.append((yield ev))

        sim.process(waiter())
        sim.run()
        assert got == ["early"]

    def test_wait_on_process(self):
        sim = Simulator()
        order = []

        def child():
            yield 3.0
            order.append("child")
            return "done"

        def parent():
            result = yield sim.process(child())
            order.append(f"parent:{result}")

        sim.process(parent())
        sim.run()
        assert order == ["child", "parent:done"]

    def test_interrupt(self):
        sim = Simulator()
        caught = []

        def sleeper():
            try:
                yield 100.0
            except Interrupt as e:
                caught.append((sim.now, e.cause))

        p = sim.process(sleeper())
        sim.schedule(1.0, p.interrupt, "wake")
        sim.run()
        assert caught == [(1.0, "wake")]

    def test_interrupt_cancels_timeout(self):
        sim = Simulator()
        trace = []

        def sleeper():
            try:
                yield 10.0
            except Interrupt:
                pass
            trace.append(sim.now)

        p = sim.process(sleeper())
        sim.schedule(1.0, p.interrupt)
        sim.run()
        # Resumed exactly once, at interrupt time — the armed timeout must
        # not fire a second resume at t=10 (its tombstone is discarded).
        assert trace == [1.0]

    def test_event_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_event_value_before_trigger_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            _ = sim.event().value

    def test_event_fail_raises_in_waiter(self):
        sim = Simulator()
        ev = sim.event()
        seen = []

        def waiter():
            try:
                yield ev
            except RuntimeError as e:
                seen.append(str(e))

        sim.process(waiter())
        sim.schedule(1.0, ev.fail, RuntimeError("boom"))
        sim.run()
        assert seen == ["boom"]

    def test_yield_garbage_raises(self):
        sim = Simulator()

        def bad():
            yield "nope"

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_every_helper(self):
        sim = Simulator()
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now))
        sim.run(until=3.5)
        assert ticks == [0.0, 1.0, 2.0, 3.0]


class TestCombinators:
    def test_all_of(self):
        sim = Simulator()
        evs = [sim.event(str(i)) for i in range(3)]
        done = []

        def waiter():
            vals = yield sim.all_of(evs)
            done.append((sim.now, vals))

        sim.process(waiter())
        for i, ev in enumerate(evs):
            sim.schedule(float(i + 1), ev.succeed, i)
        sim.run()
        assert done == [(3.0, [0, 1, 2])]

    def test_all_of_empty(self):
        sim = Simulator()
        done = []

        def waiter():
            vals = yield sim.all_of([])
            done.append(vals)

        sim.process(waiter())
        sim.run()
        assert done == [[]]

    def test_any_of(self):
        sim = Simulator()
        evs = [sim.event(str(i)) for i in range(3)]
        done = []

        def waiter():
            val = yield sim.any_of(evs)
            done.append((sim.now, val))

        sim.process(waiter())
        sim.schedule(2.0, evs[1].succeed, "winner")
        sim.schedule(5.0, evs[0].succeed, "late")
        sim.run()
        assert done == [(2.0, "winner")]

    def test_determinism_across_runs(self):
        def run_once():
            sim = Simulator()
            trace = []

            def worker(tag, delay):
                yield delay
                trace.append((tag, sim.now))
                yield delay
                trace.append((tag, sim.now))

            for i in range(5):
                sim.process(worker(i, 0.1 * (i + 1)))
            sim.run()
            return trace

        assert run_once() == run_once()


class TestTimers:
    def test_call_later_fires_and_cancel_suppresses(self):
        sim = Simulator()
        out = []
        sim.call_later(1.0, out.append, "a")
        t = sim.call_later(2.0, out.append, "b")
        t.cancel()
        sim.run()
        assert out == ["a"]

    def test_every_returns_cancellable_handle(self):
        sim = Simulator()
        ticks = []
        timer = sim.every(1.0, lambda: ticks.append(sim.now))
        sim.schedule(2.5, timer.cancel)
        sim.run(until=6.0)
        assert ticks == [0.0, 1.0, 2.0]

    def test_every_with_start_offset(self):
        sim = Simulator()
        ticks = []
        sim.every(1.0, lambda: ticks.append(sim.now), start=0.5)
        sim.run(until=3.0)
        assert ticks == [0.5, 1.5, 2.5]

    def test_heap_stays_bounded_under_cancel_churn(self):
        """Regression: cancelled timers must not accumulate as tombstones.

        The pre-compaction kernel kept every cancelled entry until its
        deadline; with long timeouts and heavy churn the heap grew without
        bound.  Compaction keeps live+dead entries within a constant factor
        of the live count.
        """
        sim = Simulator()
        peak = [0]

        def churn():
            for _ in range(10_000):
                t = sim.call_later(1000.0, lambda: None)
                t.cancel()
                peak[0] = max(peak[0], len(sim._heap))

        sim.schedule(0.0, churn)
        sim.run()
        # 10k cancelled long-deadline timers; compaction must keep the
        # heap within a constant factor of the live entry count.
        assert peak[0] < 200
        assert sim.pending == 0 and len(sim._heap) == 0

    def test_compaction_preserves_dispatch_order(self):
        sim = Simulator()
        out = []
        live = [sim.call_later(float(i + 1), out.append, i) for i in range(10)]
        dead = [sim.call_later(500.0, out.append, "dead") for _ in range(300)]
        for t in dead:
            t.cancel()            # crosses the tombstone threshold mid-run
        sim.run()
        assert out == list(range(10))

    def test_fast_periodic_matches_generator_path(self):
        """The PeriodicTimer fast path is bit-identical to the legacy
        generator-process path: same tick times, same interleaving with
        other processes, same seq-number tie-breaks."""
        def run_once(fast):
            sim = Simulator(fast_periodic=fast)
            trace = []
            sim.every(0.1, lambda: trace.append(("tick", sim.now)))
            sim.every(0.25, lambda: trace.append(("slow", sim.now)), start=0.25)

            def proc():
                while sim.now < 0.9:
                    yield 0.1
                    trace.append(("proc", sim.now))

            sim.process(proc())
            sim.run(until=1.0)
            return trace

        assert run_once(True) == run_once(False)

    def test_timer_classes_exported(self):
        sim = Simulator()
        assert isinstance(sim.call_later(1.0, lambda: None), Timer)
        assert isinstance(sim.every(1.0, lambda: None), PeriodicTimer)
