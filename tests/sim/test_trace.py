import pytest

from repro.sim.trace import Tracer


class TestTracer:
    def test_record_and_query(self):
        tr = Tracer()
        tr.record(1.0, "completion", principal="A")
        tr.record(2.0, "completion", principal="B")
        tr.record(3.0, "allocation", node="R1")
        assert tr.count("completion") == 2
        assert tr.count("completion", principal="A") == 1
        assert tr.count() == 3

    def test_time_window(self):
        tr = Tracer()
        for t in range(10):
            tr.record(float(t), "tick")
        assert len(tr.query("tick", t0=2.0, t1=5.0)) == 3

    def test_ring_buffer(self):
        tr = Tracer(maxlen=5)
        for t in range(8):
            tr.record(float(t), "tick", n=t)
        assert len(tr) == 5
        assert tr.dropped == 3
        assert tr.query("tick")[0]["n"] == 3  # oldest kept

    def test_summary_and_last(self):
        tr = Tracer()
        tr.record(0.0, "a")
        tr.record(1.0, "b")
        tr.record(2.0, "a")
        assert tr.summary() == {"a": 2, "b": 1}
        assert tr.last("a")["t"] == 2.0
        assert tr.last("zzz") is None

    def test_clear(self):
        tr = Tracer()
        tr.record(0.0, "x")
        tr.clear()
        assert len(tr) == 0

    def test_bad_maxlen(self):
        with pytest.raises(ValueError):
            Tracer(maxlen=0)


class TestScenarioTracing:
    def test_traced_scenario_records_events(self, fig6_graph):
        from repro.experiments.harness import Scenario

        sc = Scenario(fig6_graph, seed=21, trace=True)
        srv = sc.server("S", "S", 320.0)
        red = sc.l7("R", {"S": srv})
        sc.client("CB", "B", red, rate=100.0)
        sc.run(5.0)
        assert sc.tracer.count("completion", principal="B") > 300
        allocations = sc.tracer.query("allocation", node="R")
        assert len(allocations) == pytest.approx(50, abs=2)
        assert all("quotas" in a for a in allocations)

    def test_untraced_scenario_has_no_tracer(self, fig6_graph):
        from repro.experiments.harness import Scenario

        sc = Scenario(fig6_graph)
        assert sc.tracer is None
