import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.monitor import PhaseStats, RateMeter, TimeSeries, summarize_phases


class TestRateMeter:
    def test_series(self):
        m = RateMeter(1.0)
        for t in (0.1, 0.2, 1.5):
            m.record("A", t)
        times, rates = m.series("A")
        np.testing.assert_allclose(times, [0.5, 1.5])
        np.testing.assert_allclose(rates, [2.0, 1.0])

    def test_empty_series(self):
        times, rates = RateMeter().series("missing")
        assert times.size == 0 and rates.size == 0

    def test_gap_bins_are_zero(self):
        m = RateMeter(1.0)
        m.record("A", 0.5)
        m.record("A", 3.5)
        _, rates = m.series("A")
        np.testing.assert_allclose(rates, [1.0, 0.0, 0.0, 1.0])

    def test_total_and_mean_rate(self):
        m = RateMeter(0.5)
        for t in np.arange(0, 10, 0.1):
            m.record("A", float(t))
        assert m.total("A", 0, 10) == pytest.approx(100)
        assert m.mean_rate("A", 0.0, 10.0) == pytest.approx(10.0)

    def test_weights(self):
        m = RateMeter(1.0)
        m.record("A", 0.2, weight=2.5)
        assert m.total("A") == pytest.approx(2.5)

    def test_bad_window(self):
        m = RateMeter(1.0)
        with pytest.raises(ValueError):
            m.mean_rate("A", 5.0, 5.0)

    def test_bad_bin_width(self):
        with pytest.raises(ValueError):
            RateMeter(0.0)

    def test_keys_sorted(self):
        m = RateMeter()
        m.record("z", 0.0)
        m.record("a", 0.0)
        assert m.keys == ["a", "z"]

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_series_integral_equals_count(self, times):
        m = RateMeter(1.0)
        for t in times:
            m.record("k", t)
        _, rates = m.series("k")
        assert rates.sum() * 1.0 == pytest.approx(len(times))


class TestTimeSeries:
    def test_window_and_mean(self):
        ts = TimeSeries()
        for t in range(10):
            ts.record(float(t), float(t) * 2)
        np.testing.assert_allclose(ts.window(2.0, 5.0), [4.0, 6.0, 8.0])
        assert ts.mean(2.0, 5.0) == pytest.approx(6.0)

    def test_non_monotonic_rejected(self):
        ts = TimeSeries()
        ts.record(1.0, 0.0)
        with pytest.raises(ValueError):
            ts.record(0.5, 0.0)

    def test_empty_mean_is_nan(self):
        assert math.isnan(TimeSeries().mean(0.0, 1.0))

    def test_last_before(self):
        ts = TimeSeries()
        ts.record(1.0, 10.0)
        ts.record(2.0, 20.0)
        assert ts.last_before(1.5) == 10.0
        assert ts.last_before(0.5) is None
        assert ts.last_before(2.0) == 20.0

    def test_len_and_arrays(self):
        ts = TimeSeries()
        ts.record(0.0, 1.0)
        assert len(ts) == 1
        np.testing.assert_allclose(ts.times, [0.0])
        np.testing.assert_allclose(ts.values, [1.0])


class TestPhaseSummaries:
    def test_summarize_phases(self):
        m = RateMeter(1.0)
        for t in np.arange(0.0, 10.0, 0.5):   # 2/sec
            m.record("A", float(t))
        for t in np.arange(10.0, 20.0, 0.25):  # 4/sec
            m.record("A", float(t))
        stats = summarize_phases(m, [("p1", 0.0, 10.0), ("p2", 10.0, 20.0)])
        assert stats[0].rate("A") == pytest.approx(2.0)
        assert stats[1].rate("A") == pytest.approx(4.0)

    def test_settle_trims_transient(self):
        m = RateMeter(1.0)
        for t in np.arange(0.0, 2.0, 0.01):   # burst at phase start
            m.record("A", float(t))
        stats = summarize_phases(m, [("p", 0.0, 10.0)], settle=2.0)
        assert stats[0].rate("A") == pytest.approx(0.0)

    def test_missing_key_rate_zero(self):
        stats = PhaseStats("p", 0.0, 1.0)
        assert stats.rate("missing") == 0.0


class TestRecordMany:
    def test_parity_with_scalar_record(self):
        import numpy as np

        rng = np.random.default_rng(0)
        times = rng.uniform(0.0, 50.0, size=5000)
        scalar = RateMeter(bin_width=0.5)
        for t in times:
            scalar.record("A", float(t))
        batched = RateMeter(bin_width=0.5)
        batched.record_many("A", times)
        st, sv = scalar.series("A")
        bt, bv = batched.series("A")
        np.testing.assert_array_equal(st, bt)
        np.testing.assert_array_equal(sv, bv)
        assert scalar.total("A", 3.0, 17.5) == pytest.approx(
            batched.total("A", 3.0, 17.5)
        )

    def test_weight_and_accumulation(self):
        m = RateMeter(bin_width=1.0)
        m.record("A", 0.5)
        m.record_many("A", [0.1, 0.2, 1.5], weight=2.0)
        assert m.total("A", 0.0, 1.0) == pytest.approx(5.0)
        assert m.total("A", 1.0, 2.0) == pytest.approx(2.0)

    def test_per_element_weights_match_scalar(self):
        rng = np.random.default_rng(1)
        times = rng.uniform(0.0, 20.0, size=800)
        weights = rng.integers(1, 5, size=800).astype(float)
        scalar = RateMeter(bin_width=1.0)
        for t, w in zip(times, weights):
            scalar.record("A", float(t), weight=float(w))
        batched = RateMeter(bin_width=1.0)
        batched.record_many("A", times, weights=weights)
        st_, sv = scalar.series("A")
        bt, bv = batched.series("A")
        np.testing.assert_array_equal(st_, bt)
        np.testing.assert_array_equal(sv, bv)

    def test_weights_shape_mismatch(self):
        m = RateMeter(bin_width=1.0)
        with pytest.raises(ValueError):
            m.record_many("A", [0.1, 0.2], weights=[1.0])

    def test_empty_batch_noop(self):
        m = RateMeter(bin_width=1.0)
        m.record_many("A", [])
        assert m.keys == []
