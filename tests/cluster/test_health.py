"""BackendHealthChecker: probes, backoff, recovery, draining.

Server crash/restart semantics (epoch guard, refusals) are covered in
``test_server.py``; these tests cover the rotation decisions built on top.
"""

import pytest

from repro.cluster.health import BackendHealthChecker
from repro.cluster.request import Request
from repro.cluster.server import Server
from repro.sim.engine import Simulator


def _world(**kw):
    sim = Simulator()
    srv = Server(sim, "S", capacity=100.0)
    events = []
    checker = BackendHealthChecker(
        sim, [srv], probe_interval=0.1, fail_after=2, max_interval=0.8,
        on_change=lambda ev, name: events.append((sim.now, ev, name)),
        **kw,
    )
    return sim, srv, checker, events


class TestProbing:
    def test_healthy_until_fail_after_consecutive_failures(self):
        sim, srv, checker, events = _world()
        sim.schedule_at(0.35, srv.crash)
        sim.run(until=0.45)                  # one failed probe at 0.4
        assert checker.is_healthy("S")
        sim.run(until=0.55)                  # second failure confirms
        assert not checker.is_healthy("S")
        assert events == [(0.5, "down", "S")]
        assert checker.marked_down == 1

    def test_down_backend_probed_with_backoff(self):
        sim, srv, checker, _ = _world()
        srv.crash()
        sim.run(until=0.2)                   # marked down at 0.2
        probes_down = checker.probes
        # Backoff: probes at 0.4, 0.8, 1.6, 2.4 (interval capped at 0.8).
        sim.run(until=0.35)
        assert checker.probes == probes_down
        sim.run(until=3.0)
        assert checker.probes - probes_down == 4

    def test_first_successful_probe_restores(self):
        sim, srv, checker, events = _world()
        srv.crash()
        sim.run(until=0.3)
        assert not checker.is_healthy("S")
        srv.restart()
        sim.run(until=1.5)                   # next backoff probe succeeds
        assert checker.is_healthy("S")
        assert checker.marked_up == 1
        assert [ev for _, ev, _ in events] == ["down", "up"]

    def test_unwatched_backend_is_trusted(self):
        sim, _, checker, _ = _world()
        assert checker.is_healthy("not-watched")

    def test_parameter_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="probe_interval"):
            BackendHealthChecker(sim, [], probe_interval=0.0)
        with pytest.raises(ValueError, match="fail_after"):
            BackendHealthChecker(sim, [], fail_after=0)
        with pytest.raises(ValueError, match="backoff"):
            BackendHealthChecker(sim, [], backoff=0.9)


class TestDraining:
    def test_drained_backend_leaves_rotation_but_serves_out(self):
        sim, srv, checker, events = _world()
        done = []
        for i in range(5):
            srv.submit(
                Request(principal="A", client_id=f"c{i}", created_at=0.0),
                done=lambda r: done.append(r.client_id),
            )
        checker.drain("S")
        assert not checker.is_healthy("S")
        assert checker.healthy() == []
        sim.run(until=1.0)
        assert len(done) == 5                # queued work completed
        checker.undrain("S")
        assert checker.is_healthy("S")
        assert [ev for _, ev, _ in events] == ["drain", "undrain"]

    def test_drain_is_idempotent(self):
        sim, srv, checker, events = _world()
        checker.drain("S")
        checker.drain("S")
        assert [ev for _, ev, _ in events] == ["drain"]
