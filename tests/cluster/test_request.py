import pytest

from repro.cluster.request import Request


class TestRequest:
    def test_defaults(self):
        r = Request(principal="A", client_id="C1", created_at=0.0)
        assert r.cost == 1.0
        assert r.attempts == 0
        assert r.response_time is None

    def test_response_time(self):
        r = Request(principal="A", client_id="C1", created_at=1.0)
        r.completed_at = 3.5
        assert r.response_time == pytest.approx(2.5)

    def test_unique_ids(self):
        a = Request(principal="A", client_id="C", created_at=0.0)
        b = Request(principal="A", client_id="C", created_at=0.0)
        assert a.request_id != b.request_id

    def test_nonpositive_cost_rejected(self):
        with pytest.raises(ValueError):
            Request(principal="A", client_id="C", created_at=0.0, cost=0.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Request(principal="A", client_id="C", created_at=0.0, size_bytes=-1)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Request(principal="A", client_id="C", created_at=0.0, cost=-2.0)

    def test_tiny_positive_cost_accepted(self):
        r = Request(principal="A", client_id="C", created_at=0.0, cost=1e-9)
        assert r.cost == 1e-9

    def test_slots_no_dict(self):
        r = Request(principal="A", client_id="C", created_at=0.0)
        with pytest.raises(AttributeError):
            r.not_a_field = 1

    def test_request_id_lazy_and_stable(self):
        r = Request(principal="A", client_id="C", created_at=0.0)
        assert r._request_id is None   # not allocated until first access
        rid = r.request_id
        assert r.request_id == rid

    def test_explicit_request_id_kept(self):
        r = Request(principal="A", client_id="C", created_at=0.0,
                    request_id=77)
        assert r.request_id == 77
