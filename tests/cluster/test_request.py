import pytest

from repro.cluster.request import Request


class TestRequest:
    def test_defaults(self):
        r = Request(principal="A", client_id="C1", created_at=0.0)
        assert r.cost == 1.0
        assert r.attempts == 0
        assert r.response_time is None

    def test_response_time(self):
        r = Request(principal="A", client_id="C1", created_at=1.0)
        r.completed_at = 3.5
        assert r.response_time == pytest.approx(2.5)

    def test_unique_ids(self):
        a = Request(principal="A", client_id="C", created_at=0.0)
        b = Request(principal="A", client_id="C", created_at=0.0)
        assert a.request_id != b.request_id

    def test_nonpositive_cost_rejected(self):
        with pytest.raises(ValueError):
            Request(principal="A", client_id="C", created_at=0.0, cost=0.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Request(principal="A", client_id="C", created_at=0.0, size_bytes=-1)
