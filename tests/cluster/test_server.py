import pytest

from repro.cluster.request import Request
from repro.cluster.server import Server
from repro.sim.engine import Simulator


def _req(principal="A", cost=1.0):
    return Request(principal=principal, client_id="C", created_at=0.0, cost=cost)


class TestServer:
    def test_service_rate(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=100.0)
        done = []
        for _ in range(50):
            srv.submit(_req(), done=lambda r: done.append(sim.now))
        sim.run()
        assert len(done) == 50
        assert done[-1] == pytest.approx(0.5)  # 50 requests at 100/s

    def test_fifo_completion_order(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=10.0)
        order = []
        for i in range(5):
            srv.submit(
                Request(principal="A", client_id=f"c{i}", created_at=0.0),
                done=lambda r: order.append(r.client_id),
            )
        sim.run()
        assert order == [f"c{i}" for i in range(5)]

    def test_cost_scales_service_time(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=10.0)
        times = []
        srv.submit(_req(cost=5.0), done=lambda r: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(0.5)]

    def test_saturation_queues(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=10.0)
        def offer():
            while sim.now < 1.0:
                srv.submit(_req())
                yield 0.05          # 20/s offered to a 10/s server
        sim.process(offer())
        sim.run(until=1.0)
        assert srv.queue_length >= 8  # backlog grows ~10/s

    def test_bounded_queue_drops(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=1.0, max_queue=2)
        results = [srv.submit(_req()) for _ in range(5)]
        assert results == [True, True, False, False, False]
        assert srv.dropped == 3

    def test_per_principal_counts(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=100.0)
        for p in ("A", "A", "B"):
            srv.submit(_req(principal=p))
        sim.run()
        assert srv.completed == {"A": 2, "B": 1}
        assert srv.total_completed() == 3

    def test_on_complete_hook(self):
        sim = Simulator()
        seen = []
        srv = Server(sim, "S", capacity=10.0,
                     on_complete=lambda r, s: seen.append((r.principal, s.name)))
        srv.submit(_req())
        sim.run()
        assert seen == [("A", "S")]

    def test_request_stamped(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=10.0)
        r = _req()
        srv.submit(r)
        sim.run()
        assert r.served_by == "S"
        assert r.completed_at == pytest.approx(0.1)

    def test_utilization(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=10.0)
        for _ in range(5):
            srv.submit(_req())
        sim.run(until=1.0)
        assert srv.utilization() == pytest.approx(0.5)

    def test_idle_then_busy_again(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=10.0)
        done = []
        srv.submit(_req(), done=lambda r: done.append(sim.now))
        sim.run(until=5.0)
        srv.submit(_req(), done=lambda r: done.append(sim.now))
        sim.run(until=10.0)
        assert done == [pytest.approx(0.1), pytest.approx(5.1)]

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Server(Simulator(), "S", capacity=0.0)

    def test_set_capacity_midstream(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=10.0)
        done = []
        def offer():
            for _ in range(20):
                srv.submit(_req(), done=lambda r: done.append(sim.now))
                yield 0.01
        sim.process(offer())
        sim.schedule(1.0, srv.set_capacity, 100.0)
        sim.run()
        before = sum(1 for t in done if t <= 1.0)
        assert before <= 11                  # ~10/s for the first second
        assert len(done) == 20               # the rest drain fast after
        assert done[-1] < 1.5

    def test_set_capacity_validates(self):
        srv = Server(Simulator(), "S", capacity=10.0)
        with pytest.raises(ValueError):
            srv.set_capacity(0.0)


class TestCrashRestart:
    def test_crash_loses_queue_and_in_service(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=10.0)
        done = []
        for _ in range(5):
            srv.submit(_req(), done=lambda r: done.append(sim.now))
        sim.schedule(0.25, srv.crash)        # two served, one mid-service
        sim.run()
        assert len(done) == 2
        assert srv.failed == 3               # 1 in service + 2 queued
        assert not srv.alive

    def test_stale_completion_voided_by_epoch_guard(self):
        # The completion event scheduled before the crash still fires;
        # the epoch guard must turn it into a no-op even after a restart.
        sim = Simulator()
        srv = Server(sim, "S", capacity=10.0)
        done = []
        srv.submit(_req(), done=lambda r: done.append(r))
        sim.schedule(0.05, srv.crash)
        sim.schedule(0.06, srv.restart)
        sim.run()
        assert done == []
        assert srv.completed == {}
        assert srv.failed == 1

    def test_refuses_while_down_and_serves_after_restart(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=10.0)
        srv.crash()
        assert srv.submit(_req()) is False
        assert srv.refused == 1
        srv.restart()
        done = []
        assert srv.submit(_req(), done=lambda r: done.append(r)) is True
        sim.run()
        assert len(done) == 1

    def test_crash_is_idempotent(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=10.0)
        srv.submit(_req())
        srv.crash()
        srv.crash()
        assert srv.failed == 1
