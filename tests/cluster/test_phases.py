import pytest

from repro.cluster.phases import PhaseSchedule


@pytest.fixture
def fig6_phases():
    return PhaseSchedule([
        ("phase1", 100.0, {"C1", "C2", "C3"}),
        ("phase2", 100.0, {"C1", "C2"}),
        ("phase3", 100.0, {"C1", "C2", "C3"}),
    ])


class TestPhaseSchedule:
    def test_total_duration(self, fig6_phases):
        assert fig6_phases.total_duration == 300.0

    def test_bounds(self, fig6_phases):
        assert fig6_phases.bounds() == [
            ("phase1", 0.0, 100.0),
            ("phase2", 100.0, 200.0),
            ("phase3", 200.0, 300.0),
        ]

    def test_phase_at(self, fig6_phases):
        assert fig6_phases.phase_at(50.0) == "phase1"
        assert fig6_phases.phase_at(100.0) == "phase2"
        assert fig6_phases.phase_at(999.0) == "phase3"  # clamps to last

    def test_is_active(self, fig6_phases):
        assert fig6_phases.is_active("C3", 50.0)
        assert not fig6_phases.is_active("C3", 150.0)
        assert fig6_phases.is_active("C3", 250.0)

    def test_windows_merges_adjacent(self):
        ps = PhaseSchedule([
            ("p1", 10.0, {"c"}),
            ("p2", 10.0, {"c"}),
            ("p3", 10.0, set()),
            ("p4", 10.0, {"c"}),
        ])
        assert ps.windows("c") == [(0.0, 20.0), (30.0, 40.0)]

    def test_windows_for_figure6_client(self, fig6_phases):
        assert fig6_phases.windows("C3") == [(0.0, 100.0), (200.0, 300.0)]

    def test_clients(self, fig6_phases):
        assert fig6_phases.clients() == ["C1", "C2", "C3"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PhaseSchedule([])

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError):
            PhaseSchedule([("p", 0.0, set())])
