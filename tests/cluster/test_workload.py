import numpy as np
import pytest

from repro.cluster.workload import ReplySizeSampler, RequestMix


class TestReplySizeSampler:
    def test_paper_marginal(self):
        """Mean ~6 KB, range 200 B - 500 KB (paper §5)."""
        sampler = ReplySizeSampler()
        rng = np.random.default_rng(0)
        sizes = sampler.sample(rng, size=200_000)
        assert sizes.min() >= 200
        assert sizes.max() <= 512_000
        assert sizes.mean() == pytest.approx(6144.0, rel=0.05)

    def test_calibration_compensates_clipping(self):
        # Without calibration, naive mu = ln(mean) - s^2/2 then clipping
        # at 500 KB would bias the mean; the solved mu must land closer.
        sampler = ReplySizeSampler(mean_bytes=20_000.0, sigma=1.8)
        rng = np.random.default_rng(1)
        sizes = sampler.sample(rng, size=200_000)
        assert sizes.mean() == pytest.approx(20_000.0, rel=0.08)

    def test_single_sample(self):
        rng = np.random.default_rng(2)
        s = ReplySizeSampler().sample(rng)
        assert 200 <= int(s) <= 512_000

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ReplySizeSampler(mean_bytes=100.0, min_bytes=200)

    def test_reproducible(self):
        a = ReplySizeSampler().sample(np.random.default_rng(3), size=10)
        b = ReplySizeSampler().sample(np.random.default_rng(3), size=10)
        np.testing.assert_array_equal(a, b)


class TestRequestMix:
    def test_draw_fields(self):
        mix = RequestMix(dynamic_fraction=0.5)
        rng = np.random.default_rng(0)
        url, size, cost = mix.draw(rng)
        assert url in ("/cgi/page", "/static/page")
        assert size >= 200
        assert cost == 1.0

    def test_dynamic_fraction_respected(self):
        mix = RequestMix(dynamic_fraction=0.3)
        rng = np.random.default_rng(1)
        urls = [mix.draw(rng)[0] for _ in range(5000)]
        frac = sum(u.startswith("/cgi") for u in urls) / len(urls)
        assert frac == pytest.approx(0.3, abs=0.03)

    def test_size_cost_mode(self):
        mix = RequestMix(size_cost=True)
        rng = np.random.default_rng(2)
        costs = [mix.draw(rng)[2] for _ in range(2000)]
        assert min(costs) >= 1.0
        assert max(costs) > 1.0  # big replies cost multiple units

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            RequestMix(dynamic_fraction=1.5)


class TestWorkloadStream:
    def _drain(self, chunk, n=5000, **kw):
        from repro.cluster.workload import WorkloadStream

        kw.setdefault("rate", 100.0)
        stream = WorkloadStream(
            RequestMix(dynamic_fraction=0.3, size_cost=True),
            np.random.default_rng(42), chunk=chunk, **kw,
        )
        return [stream.draw_next() for _ in range(n)]

    def test_chunk_size_invariance(self):
        """The emitted stream is identical for any chunk size — the
        determinism contract of the vectorised fast lane."""
        base = self._drain(1)
        assert self._drain(256) == base
        assert self._drain(4096) == base

    def test_chunk_invariance_poisson(self):
        base = self._drain(1, arrivals="poisson")
        assert self._drain(512, arrivals="poisson") == base

    def test_chunk_invariance_jittered(self):
        base = self._drain(1, jitter=0.3)
        assert self._drain(300, jitter=0.3) == base

    def test_spawn_does_not_touch_parent(self):
        from repro.cluster.workload import WorkloadStream

        rng = np.random.default_rng(5)
        before = np.random.default_rng(5).random(4)
        WorkloadStream(RequestMix(), rng)
        np.testing.assert_array_equal(rng.random(4), before)

    def test_clipped_mean_distribution(self):
        """Streamed sizes reproduce the paper marginal: mean ~6 KB within
        the 200 B - 500 KB clip range."""
        draws = self._drain(1024, n=200_000)
        sizes = np.array([d[1] for d in draws])
        assert sizes.min() >= 200
        assert sizes.max() <= 512_000
        assert sizes.mean() == pytest.approx(6144.0, rel=0.05)

    def test_dynamic_fraction(self):
        draws = self._drain(1024, n=20_000)
        frac = sum(d[0].startswith("/cgi") for d in draws) / len(draws)
        assert frac == pytest.approx(0.3, abs=0.02)

    def test_size_cost_matches_scalar_formula(self):
        """Vectorised costs equal the scalar path's max(1, round(size/unit))
        applied to the streamed sizes."""
        mix = RequestMix(size_cost=True)
        unit = mix.unit_bytes or mix.sampler.mean_bytes
        for url, size, cost, _gap in self._drain(128, n=5000):
            assert cost == max(1.0, round(size / unit))
            assert url in ("/cgi/page", "/static/page")

    def test_uniform_gaps_fixed_spacing(self):
        draws = self._drain(64, n=500, rate=50.0)
        assert all(d[3] == pytest.approx(0.02) for d in draws)

    def test_poisson_gap_mean(self):
        draws = self._drain(1024, n=100_000, rate=100.0, arrivals="poisson")
        gaps = np.array([d[3] for d in draws])
        assert gaps.mean() == pytest.approx(0.01, rel=0.02)

    def test_no_rate_no_gaps(self):
        draws = self._drain(16, n=50, rate=None)
        assert all(d[3] is None for d in draws)

    def test_validation(self):
        from repro.cluster.workload import WorkloadStream

        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            WorkloadStream(RequestMix(), rng, chunk=0)
        with pytest.raises(ValueError):
            WorkloadStream(RequestMix(), rng, rate=-1.0)
        with pytest.raises(ValueError):
            WorkloadStream(RequestMix(), rng, arrivals="bursty")
