import numpy as np
import pytest

from repro.cluster.workload import ReplySizeSampler, RequestMix


class TestReplySizeSampler:
    def test_paper_marginal(self):
        """Mean ~6 KB, range 200 B - 500 KB (paper §5)."""
        sampler = ReplySizeSampler()
        rng = np.random.default_rng(0)
        sizes = sampler.sample(rng, size=200_000)
        assert sizes.min() >= 200
        assert sizes.max() <= 512_000
        assert sizes.mean() == pytest.approx(6144.0, rel=0.05)

    def test_calibration_compensates_clipping(self):
        # Without calibration, naive mu = ln(mean) - s^2/2 then clipping
        # at 500 KB would bias the mean; the solved mu must land closer.
        sampler = ReplySizeSampler(mean_bytes=20_000.0, sigma=1.8)
        rng = np.random.default_rng(1)
        sizes = sampler.sample(rng, size=200_000)
        assert sizes.mean() == pytest.approx(20_000.0, rel=0.08)

    def test_single_sample(self):
        rng = np.random.default_rng(2)
        s = ReplySizeSampler().sample(rng)
        assert 200 <= int(s) <= 512_000

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ReplySizeSampler(mean_bytes=100.0, min_bytes=200)

    def test_reproducible(self):
        a = ReplySizeSampler().sample(np.random.default_rng(3), size=10)
        b = ReplySizeSampler().sample(np.random.default_rng(3), size=10)
        np.testing.assert_array_equal(a, b)


class TestRequestMix:
    def test_draw_fields(self):
        mix = RequestMix(dynamic_fraction=0.5)
        rng = np.random.default_rng(0)
        url, size, cost = mix.draw(rng)
        assert url in ("/cgi/page", "/static/page")
        assert size >= 200
        assert cost == 1.0

    def test_dynamic_fraction_respected(self):
        mix = RequestMix(dynamic_fraction=0.3)
        rng = np.random.default_rng(1)
        urls = [mix.draw(rng)[0] for _ in range(5000)]
        frac = sum(u.startswith("/cgi") for u in urls) / len(urls)
        assert frac == pytest.approx(0.3, abs=0.03)

    def test_size_cost_mode(self):
        mix = RequestMix(size_cost=True)
        rng = np.random.default_rng(2)
        costs = [mix.draw(rng)[2] for _ in range(2000)]
        assert min(costs) >= 1.0
        assert max(costs) > 1.0  # big replies cost multiple units

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            RequestMix(dynamic_fraction=1.5)
