"""Resource containers (long-lived request support)."""

import pytest

from repro.cluster.containers import ContainerServer
from repro.cluster.request import Request
from repro.sim.engine import Simulator


def _req(principal, cost=1.0):
    return Request(principal=principal, client_id="C", created_at=0.0, cost=cost)


def _server(sim, shares=None, capacity=100.0, **kw):
    return ContainerServer(
        sim, "CS", capacity, shares or {"A": 0.5, "B": 0.5}, **kw
    )


class TestDeficitRoundRobin:
    def test_proportional_under_saturation(self):
        sim = Simulator()
        srv = _server(sim, {"A": 0.75, "B": 0.25})

        def offer(p):
            while sim.now < 10.0:
                srv.submit(_req(p))
                yield 0.005          # 200/s each >> capacity 100/s
        sim.process(offer("A"))
        sim.process(offer("B"))
        sim.run(until=10.0)
        ratio = srv.served("A") / max(srv.served("B"), 1)
        assert ratio == pytest.approx(3.0, rel=0.1)

    def test_work_conserving_when_one_idle(self):
        sim = Simulator()
        srv = _server(sim, {"A": 0.5, "B": 0.5})

        def offer():
            while sim.now < 10.0:
                srv.submit(_req("A"))
                yield 0.005
        sim.process(offer())
        sim.run(until=10.0)
        # A alone gets the whole 100/s despite a 50% share.
        assert srv.served("A") == pytest.approx(1000, rel=0.05)

    def test_fifo_within_container(self):
        sim = Simulator()
        srv = _server(sim)
        order = []
        for i in range(4):
            srv.submit(
                Request(principal="A", client_id=f"c{i}", created_at=0.0),
                done=lambda r: order.append(r.client_id),
            )
        sim.run(until=1.0)
        assert order == ["c0", "c1", "c2", "c3"]

    def test_unknown_principal_dropped(self):
        sim = Simulator()
        srv = _server(sim)
        assert not srv.submit(_req("Z"))
        assert srv.dropped == 1

    def test_cost_weighted_service(self):
        sim = Simulator()
        srv = _server(sim)
        done = []
        srv.submit(_req("A", cost=50.0), done=lambda r: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.5)]  # 50 units at 100/s


class TestStreams:
    def test_admission_within_guarantee(self):
        sim = Simulator()
        srv = _server(sim)       # A guaranteed 50 units/s
        h = srv.open_stream("A", rate=40.0, duration=10.0)
        assert h is not None
        assert srv.container_usage("A") == (pytest.approx(40.0), pytest.approx(50.0))

    def test_rejection_beyond_guarantee(self):
        sim = Simulator()
        srv = _server(sim)
        assert srv.open_stream("A", rate=60.0, duration=10.0) is None
        assert srv.rejected_streams == 1

    def test_borrowing_headroom(self):
        sim = Simulator()
        srv = _server(sim, borrow_limit=1.5)
        assert srv.open_stream("A", rate=70.0, duration=10.0) is not None

    def test_total_capacity_respected_even_with_borrowing(self):
        sim = Simulator()
        srv = _server(sim, borrow_limit=2.0)
        assert srv.open_stream("A", rate=90.0, duration=10.0) is not None
        # B's guarantee alone would admit 50, but only 10 units remain.
        assert srv.open_stream("B", rate=20.0, duration=10.0) is None

    def test_stream_expires(self):
        sim = Simulator()
        srv = _server(sim)
        h = srv.open_stream("A", rate=40.0, duration=2.0)
        sim.run(until=3.0)
        assert not h.active
        assert srv.reserved_rate == pytest.approx(0.0)
        assert srv.open_stream("A", rate=40.0, duration=1.0) is not None

    def test_early_close(self):
        sim = Simulator()
        srv = _server(sim)
        h = srv.open_stream("A", rate=40.0, duration=100.0)
        srv.close_stream(h)
        assert srv.reserved_rate == pytest.approx(0.0)

    def test_streams_slow_request_service(self):
        sim = Simulator()
        srv = _server(sim)
        srv.open_stream("A", rate=50.0, duration=100.0)  # half the server
        done = []
        for _ in range(50):
            srv.submit(_req("B"), done=lambda r: done.append(sim.now))
        sim.run(until=10.0)
        # 50 requests at the residual 50/s rate: last completes ~1 s.
        assert done[-1] == pytest.approx(1.0, rel=0.05)

    def test_streams_charge_their_own_container(self):
        """Isolation: B's streams shrink B's short-request share, never
        A's — the Cluster Reserves property."""
        sim = Simulator()
        srv = _server(sim, {"A": 0.5, "B": 0.5}, capacity=100.0)
        srv.open_stream("B", rate=40.0, duration=100.0)

        def offer(p):
            while sim.now < 10.0:
                srv.submit(_req(p))
                yield 0.005
        sim.process(offer("A"))
        sim.process(offer("B"))
        sim.run(until=10.0)
        # Residual 60 units/s split 50:10 by net weights.
        assert srv.served("A") / 10.0 == pytest.approx(50.0, rel=0.1)
        assert srv.served("B") / 10.0 == pytest.approx(10.0, rel=0.2)

    def test_fully_reserved_server_stalls_then_recovers(self):
        sim = Simulator()
        srv = _server(sim, borrow_limit=2.0)
        srv.open_stream("A", rate=100.0, duration=2.0)   # 100% reserved
        done = []
        srv.submit(_req("B"), done=lambda r: done.append(sim.now))
        sim.run(until=5.0)
        assert done and done[0] >= 2.0   # served only after the stream ends

    def test_bad_stream_params(self):
        sim = Simulator()
        srv = _server(sim)
        with pytest.raises(ValueError):
            srv.open_stream("A", rate=0.0, duration=1.0)

    def test_unknown_principal_stream(self):
        sim = Simulator()
        assert _server(sim).open_stream("Z", 1.0, 1.0) is None


class TestValidation:
    def test_over_promised_shares(self):
        with pytest.raises(ValueError):
            _server(Simulator(), {"A": 0.6, "B": 0.6})

    def test_negative_share(self):
        with pytest.raises(ValueError):
            _server(Simulator(), {"A": -0.1})

    def test_bad_borrow_limit(self):
        with pytest.raises(ValueError):
            _server(Simulator(), borrow_limit=0.5)
