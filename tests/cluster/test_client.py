import numpy as np
import pytest

from repro.cluster.client import ClientMachine, Defer, Drop, Held, Redirect
from repro.cluster.server import Server
from repro.sim.engine import Simulator


class ScriptedRedirector:
    """Redirector double returning a scripted sequence of decisions."""

    def __init__(self, decisions):
        self.decisions = decisions
        self.seen = []
        self.dones = []

    def handle(self, request, done=None):
        self.seen.append(request)
        self.dones.append(done)
        if callable(self.decisions):
            return self.decisions(request)
        return self.decisions


def _client(sim, red, **kw):
    kw.setdefault("rate", 100.0)
    return ClientMachine(
        sim, "C1", "A", red, rng=np.random.default_rng(0), **kw
    )


class TestOpenLoop:
    def test_generation_rate(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=10_000.0)
        red = ScriptedRedirector(Redirect(srv))
        c = _client(sim, red, rate=100.0)
        sim.run(until=10.0)
        assert c.issued == pytest.approx(1000, abs=2)
        assert c.admitted == c.issued

    def test_active_windows(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=10_000.0)
        red = ScriptedRedirector(Redirect(srv))
        c = _client(sim, red, rate=100.0, active_windows=[(2.0, 4.0)])
        sim.run(until=10.0)
        assert c.issued == pytest.approx(200, abs=2)

    def test_defer_then_retry(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=10_000.0)
        calls = {"n": 0}

        def flaky(request):
            calls["n"] += 1
            return Defer() if request.attempts == 1 else Redirect(srv)

        red = ScriptedRedirector(flaky)
        c = _client(sim, red, rate=10.0, retry_delay=0.1)
        sim.run(until=5.0)
        assert c.deferred > 0
        assert c.admitted > 0
        # every admitted request needed exactly two attempts
        assert all(r.attempts == 2 for r in red.seen if r.served_by or r.attempts == 2)

    def test_retry_pool_overflow_drops(self):
        sim = Simulator()
        red = ScriptedRedirector(Defer())
        c = _client(sim, red, rate=100.0, max_retry_pool=5, retry_delay=10.0)
        sim.run(until=2.0)
        assert c._retry_pool == 5
        assert c.dropped > 0

    def test_drop_decision_counted(self):
        sim = Simulator()
        red = ScriptedRedirector(Drop())
        c = _client(sim, red, rate=50.0)
        sim.run(until=1.0)
        assert c.dropped == c.issued
        assert c.admitted == 0

    def test_held_counts_admitted(self):
        sim = Simulator()
        red = ScriptedRedirector(Held())
        c = _client(sim, red, rate=50.0)
        sim.run(until=1.0)
        assert c.admitted == c.issued
        assert all(d is not None for d in red.dones)  # done callback passed

    def test_response_times_recorded(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=100.0)
        red = ScriptedRedirector(Redirect(srv))
        c = _client(sim, red, rate=10.0)
        sim.run(until=2.0)
        assert c.completed > 0
        assert all(rt >= 0.0 for rt in c.response_times)

    def test_stops_when_no_future_activity(self):
        sim = Simulator()
        red = ScriptedRedirector(Drop())
        c = _client(sim, red, rate=100.0, active_windows=[(0.0, 1.0)])
        sim.run(until=50.0)
        issued_at_1s = c.issued
        assert issued_at_1s == pytest.approx(100, abs=2)

    def test_poisson_arrivals(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=100_000.0)
        red = ScriptedRedirector(Redirect(srv))
        c = _client(sim, red, rate=200.0, arrivals="poisson")
        sim.run(until=30.0)
        # Mean rate matches; inter-arrival CoV near 1 (exponential).
        assert c.issued == pytest.approx(6000, rel=0.08)

    def test_unknown_arrival_process(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            _client(sim, ScriptedRedirector(Drop()), arrivals="bursty")

    def test_bad_rate_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            _client(sim, ScriptedRedirector(Drop()), rate=0.0)

    def test_bad_mode_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            _client(sim, ScriptedRedirector(Drop()), mode="weird")


class TestClosedLoop:
    def test_closed_loop_completes(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=50.0)
        red = ScriptedRedirector(Redirect(srv))
        c = _client(sim, red, rate=100.0, mode="closed", users=4)
        sim.run(until=5.0)
        assert c.completed > 0
        # closed loop: outstanding <= users
        assert c.issued - c.completed <= 4

    def test_closed_loop_throttled_by_server(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=10.0)
        red = ScriptedRedirector(Redirect(srv))
        c = _client(sim, red, rate=1000.0, mode="closed", users=2)
        sim.run(until=10.0)
        # completion rate bounded by server capacity, not offered rate
        assert c.completed <= 110

    def test_closed_loop_defer_retries(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=100.0)
        state = {"denied": 0}

        def gate(request):
            if state["denied"] < 3:
                state["denied"] += 1
                return Defer()
            return Redirect(srv)

        red = ScriptedRedirector(gate)
        c = _client(sim, red, rate=10.0, mode="closed", users=1, retry_delay=0.05)
        sim.run(until=2.0)
        assert c.completed > 0
        assert c.deferred == 3

    def test_closed_loop_server_overflow_deferred(self):
        """Regression: a bounded server queue returning False from submit
        must defer the virtual user, not leave it waiting on a response
        event that will never fire."""
        sim = Simulator()
        srv = Server(sim, "S", capacity=100.0, max_queue=1)
        red = ScriptedRedirector(Redirect(srv))
        c = _client(sim, red, rate=1000.0, mode="closed", users=4,
                    retry_delay=0.01)
        sim.run(until=5.0)
        # max_queue=1 means any submit while busy overflows; with four
        # users hammering one slot, overflow is guaranteed.
        assert srv.dropped > 0
        assert c.deferred > 0
        # pre-fix, every user hung on its first overflow: completions
        # stalled at ~users.  Post-fix the loop keeps making progress at
        # roughly the server's service rate.
        assert c.completed > 100

    def test_closed_loop_overflow_counts_not_admitted(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=100.0, max_queue=1)
        red = ScriptedRedirector(Redirect(srv))
        c = _client(sim, red, rate=1000.0, mode="closed", users=4,
                    retry_delay=0.01)
        sim.run(until=2.0)
        # admitted counts only successful submits: every handle() attempt
        # either admitted or deferred, never both.
        assert c.admitted + c.deferred == len(red.seen)


class TestFastLane:
    def test_fast_and_scalar_issue_identically(self):
        """Uniform arrivals without jitter tick the same clock in both
        lanes, so issued/admitted counts must match exactly."""
        counts = {}
        for fast in (True, False):
            sim = Simulator()
            srv = Server(sim, "S", capacity=1e9)
            red = ScriptedRedirector(Redirect(srv))
            c = _client(sim, red, rate=250.0, fast_lane=fast)
            sim.run(until=4.0)
            counts[fast] = (c.issued, c.admitted)
        assert counts[True] == counts[False]

    def test_fast_lane_respects_windows(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=1e9)
        red = ScriptedRedirector(Redirect(srv))
        c = _client(sim, red, rate=100.0, fast_lane=True,
                    active_windows=[(1.0, 2.0), (4.0, 5.0)])
        sim.run(until=10.0)
        assert c.issued == pytest.approx(200, abs=4)

    def test_overlapping_windows_merged(self):
        sim = Simulator()
        red = ScriptedRedirector(Drop())
        c = _client(sim, red, rate=100.0,
                    active_windows=[(0.0, 2.0), (1.0, 3.0)])
        assert c.is_active(2.5)
        assert not c.is_active(3.5)
        assert c._next_activity_start(-1.0) == 0.0
        assert c._next_activity_start(3.0) is None

    def test_response_stats_streaming(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=100.0)
        red = ScriptedRedirector(Redirect(srv))
        c = _client(sim, red, rate=50.0)
        sim.run(until=4.0)
        assert c.response_stats.count == c.completed
        assert len(c.response_times) == c.completed  # under reservoir cap
        assert c.response_stats.mean > 0.0

    def test_reservoir_bounds_memory(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=1e9)
        red = ScriptedRedirector(Redirect(srv))
        c = _client(sim, red, rate=2000.0, rt_reservoir=128)
        sim.run(until=2.0)
        assert c.completed > 1000
        assert len(c.response_times) == 128
        assert c.response_stats.count == c.completed

    def test_closed_loop_uses_stream_fields(self):
        sim = Simulator()
        srv = Server(sim, "S", capacity=1e6)
        red = ScriptedRedirector(Redirect(srv))
        c = _client(sim, red, rate=100.0, mode="closed", users=2,
                    fast_lane=True)
        sim.run(until=2.0)
        assert c.completed > 0
        assert all(r.size_bytes >= 200 for r in red.seen)
