import numpy as np
import pytest

from repro.core.access import AccessLevels, compute_access_levels


class TestAccessLevels:
    def test_methods_agree(self, fig3_graph):
        closed = compute_access_levels(fig3_graph, method="closed")
        paths = compute_access_levels(fig3_graph, method="paths")
        np.testing.assert_allclose(closed.MC, paths.MC, atol=1e-9)
        np.testing.assert_allclose(closed.MI, paths.MI, atol=1e-9)

    def test_unknown_method(self, fig3_graph):
        with pytest.raises(ValueError):
            compute_access_levels(fig3_graph, method="magic")

    def test_mandatory_optional_accessors(self, fig3_graph):
        acc = compute_access_levels(fig3_graph)
        assert acc.mandatory("C") == pytest.approx(1140.0)
        assert acc.optional("C") == pytest.approx(960.0)

    def test_entitlement_accessor(self, fig3_graph):
        acc = compute_access_levels(fig3_graph)
        mi, oi = acc.entitlement("C", "B")
        assert mi == pytest.approx(900.0)
        assert oi == pytest.approx(600.0)

    def test_per_window_scaling(self, fig6_graph):
        acc = compute_access_levels(fig6_graph)
        w = acc.per_window(0.1)
        assert w.mandatory("B") == pytest.approx(0.1 * acc.mandatory("B"))
        np.testing.assert_allclose(w.MI, 0.1 * acc.MI)
        # The original is untouched (scaled() returns a copy).
        assert acc.mandatory("B") == pytest.approx(256.0)

    def test_negative_scale_rejected(self, fig6_graph):
        acc = compute_access_levels(fig6_graph)
        with pytest.raises(ValueError):
            acc.scaled(-1.0)

    def test_as_dict(self, fig6_graph):
        d = compute_access_levels(fig6_graph).as_dict()
        assert d["A"] == (pytest.approx(64.0), pytest.approx(256.0))
        assert d["B"] == (pytest.approx(256.0), pytest.approx(64.0))

    def test_fig6_levels(self, fig6_graph):
        acc = compute_access_levels(fig6_graph)
        # S gave everything away as guarantees; retains only optional.
        assert acc.mandatory("S") == pytest.approx(0.0)
        assert acc.optional("S") == pytest.approx(320.0)

    def test_fig9_levels(self, fig9_graph):
        acc = compute_access_levels(fig9_graph)
        assert acc.mandatory("A") == pytest.approx(480.0)
        assert acc.mandatory("B") == pytest.approx(160.0)
        assert acc.optional("B") == pytest.approx(160.0)
