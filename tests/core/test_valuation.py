import pytest

from repro.core.agreements import Agreement, AgreementError, AgreementGraph
from repro.core.tickets import TicketKind
from repro.core.valuation import value_currencies


class TestFig3Valuation:
    def test_final_values(self, fig3_graph):
        v = value_currencies(fig3_graph)
        assert v.final("A") == pytest.approx((600.0, 400.0))
        assert v.final("B") == pytest.approx((760.0, 1340.0))
        assert v.final("C") == pytest.approx((1140.0, 960.0))

    def test_gross_values(self, fig3_graph):
        v = value_currencies(fig3_graph)
        assert v.gross("A") == pytest.approx(1000.0)
        assert v.gross("B") == pytest.approx(1900.0)  # 1500 + 1000*0.4
        assert v.gross("C") == pytest.approx(1140.0)

    def test_ticket_real_values(self, fig3_graph):
        v = value_currencies(fig3_graph)
        assert v.ticket_value("A", "B", TicketKind.MANDATORY) == pytest.approx(400.0)
        assert v.ticket_value("A", "B", TicketKind.OPTIONAL) == pytest.approx(200.0)
        assert v.ticket_value("B", "C", TicketKind.MANDATORY) == pytest.approx(1140.0)
        assert v.ticket_value("B", "C", TicketKind.OPTIONAL) == pytest.approx(960.0)

    def test_optional_inflow(self, fig3_graph):
        v = value_currencies(fig3_graph)
        assert v.optional_inflow("B") == pytest.approx(200.0)
        assert v.optional_inflow("C") == pytest.approx(960.0)

    def test_as_dict(self, fig3_graph):
        d = value_currencies(fig3_graph).as_dict()
        assert set(d) == {"A", "B", "C"}

    def test_unknown_agreement_rejected(self, fig3_graph):
        v = value_currencies(fig3_graph)
        with pytest.raises(AgreementError):
            v.ticket_value("A", "C", TicketKind.MANDATORY)


class TestFaceValueInvariance:
    def test_face_value_does_not_change_real_values(self):
        """The paper: face values are arbitrary; only fractions matter."""
        def build(face):
            g = AgreementGraph()
            g.add_principal("A", capacity=1000.0, face_value=face)
            g.add_principal("B", capacity=1500.0, face_value=face * 3)
            g.add_agreement(Agreement("A", "B", 0.4, 0.6))
            return value_currencies(g)

        v1, v2 = build(100.0), build(250.0)
        assert v1.final("A") == pytest.approx(v2.final("A"))
        assert v1.final("B") == pytest.approx(v2.final("B"))
