"""Hierarchical (sub-ASP reselling) agreement structures."""

import pytest

from repro.core.access import compute_access_levels
from repro.core.agreements import AgreementError
from repro.core.hierarchy import (
    Tier,
    build_hierarchy,
    effective_entitlements,
    oversell_report,
)
from repro.scheduling.community import CommunityScheduler
from repro.scheduling.window import WindowConfig


def _asp_tree():
    """ASP (1000 req/s) -> two resellers -> four end customers."""
    asp = Tier("asp", capacity=1000.0)
    r1 = asp.child("reseller-1", lb=0.4, ub=0.6)
    r2 = asp.child("reseller-2", lb=0.3, ub=0.5)
    r1.child("cust-1a", lb=0.5, ub=0.8)
    r1.child("cust-1b", lb=0.3, ub=0.6)
    r2.child("cust-2a", lb=0.6, ub=1.0)
    r2.child("cust-2b", lb=0.2, ub=0.5)
    return asp


class TestBuild:
    def test_graph_shape(self):
        g = build_hierarchy(_asp_tree())
        assert len(g) == 7
        assert g.agreement("asp", "reseller-1").lb == pytest.approx(0.4)
        assert g.agreement("reseller-2", "cust-2a").ub == pytest.approx(1.0)

    def test_overselling_guarantees_rejected(self):
        asp = Tier("asp", capacity=100.0)
        r = asp.child("r", lb=0.5, ub=0.8)
        r.child("c1", lb=0.7, ub=0.9)
        r.child("c2", lb=0.5, ub=0.9)   # 0.7 + 0.5 > 1 of r's currency
        with pytest.raises(AgreementError, match="100%"):
            build_hierarchy(asp)

    def test_walk_order(self):
        names = [t.name for t in _asp_tree().walk()]
        assert names[0] == "asp"
        assert set(names) == {
            "asp", "reseller-1", "reseller-2",
            "cust-1a", "cust-1b", "cust-2a", "cust-2b",
        }


class TestEntitlements:
    def test_passthrough_arithmetic(self):
        ents = effective_entitlements(_asp_tree())
        # cust-1a: 0.5 of reseller-1's currency = 0.5 * 0.4 * 1000 = 200.
        assert ents["cust-1a"][0] == pytest.approx(200.0)
        assert ents["cust-2a"][0] == pytest.approx(180.0)  # 0.6 * 0.3 * 1000

    def test_total_mandatory_conserved(self):
        g = build_hierarchy(_asp_tree())
        access = compute_access_levels(g)
        assert access.MC.sum() == pytest.approx(1000.0)

    def test_leaf_customers_only(self):
        ents = effective_entitlements(_asp_tree())
        assert set(ents) == {"cust-1a", "cust-1b", "cust-2a", "cust-2b"}


class TestOversell:
    def test_report(self):
        report = oversell_report(_asp_tree())
        assert report["asp"] == (pytest.approx(0.7), pytest.approx(1.1))
        assert report["reseller-1"] == (pytest.approx(0.8), pytest.approx(1.4))
        assert "cust-1a" not in report

    def test_best_effort_may_exceed_one(self):
        asp = Tier("asp", capacity=100.0)
        asp.child("c1", lb=0.2, ub=1.0)
        asp.child("c2", lb=0.2, ub=1.0)
        g, b = oversell_report(asp)["asp"]
        assert g <= 1.0 and b == pytest.approx(2.0)


class TestSchedulingThroughHierarchy:
    def test_end_customers_schedulable(self):
        """The community scheduler needs nothing special: end customers'
        transitive entitlements bound their admission directly."""
        g = build_hierarchy(_asp_tree())
        sched = CommunityScheduler(compute_access_levels(g), WindowConfig(1.0))
        # Everybody floods: mandatory chain determines the split.
        q = {name: 1000.0 for name in g.names if name.startswith("cust")}
        plan = sched.schedule(q)
        assert plan.served("cust-1a") >= 200.0 - 1e-6
        assert plan.served("cust-2a") >= 180.0 - 1e-6
        total = sum(plan.served(c) for c in q)
        assert total <= 1000.0 + 1e-6

    def test_idle_customer_capacity_reused(self):
        g = build_hierarchy(_asp_tree())
        sched = CommunityScheduler(compute_access_levels(g), WindowConfig(1.0))
        q = {"cust-1a": 1000.0}      # everyone else idle
        plan = sched.schedule(q)
        # cust-1a's ceiling: mandatory 200 + optional headroom; far above
        # its guarantee, bounded by its [0.5, 0.8] on reseller-1's flow.
        assert plan.served("cust-1a") > 200.0
