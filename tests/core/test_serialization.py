import io
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.agreements import Agreement, AgreementError, AgreementGraph
from repro.core.flows import closed_form_flows
from repro.core.serialization import (
    dump_graph,
    graph_from_dict,
    graph_to_dict,
    load_graph,
)


class TestRoundTrip:
    def test_fig3_roundtrip(self, fig3_graph):
        g2 = graph_from_dict(graph_to_dict(fig3_graph))
        assert g2.names == fig3_graph.names
        assert g2.agreement("A", "B").ub == pytest.approx(0.6)
        import numpy as np

        np.testing.assert_allclose(
            closed_form_flows(g2).MC, closed_form_flows(fig3_graph).MC
        )

    def test_file_roundtrip(self, fig3_graph, tmp_path):
        path = tmp_path / "graph.json"
        dump_graph(fig3_graph, str(path))
        g2 = load_graph(str(path))
        assert g2.names == fig3_graph.names

    def test_stream_roundtrip(self, fig3_graph):
        buf = io.StringIO()
        dump_graph(fig3_graph, buf)
        buf.seek(0)
        g2 = load_graph(buf)
        assert g2.principal("B").capacity == 1500.0

    def test_face_value_preserved(self):
        g = AgreementGraph()
        g.add_principal("A", capacity=10.0, face_value=250.0)
        g2 = graph_from_dict(graph_to_dict(g))
        assert g2.principal("A").face_value == 250.0

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=500.0),
                st.floats(min_value=0.0, max_value=0.4),
                st.floats(min_value=0.0, max_value=0.4),
            ),
            min_size=2, max_size=5,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_random_roundtrip(self, rows):
        g = AgreementGraph()
        for i, (cap, _, _) in enumerate(rows):
            g.add_principal(f"P{i}", capacity=cap)
        for i, (_, lb, width) in enumerate(rows[:-1]):
            g.add_agreement(
                Agreement(f"P{i}", f"P{i+1}", round(lb, 3),
                          round(min(1.0, lb + width), 3))
            )
        g2 = graph_from_dict(json.loads(json.dumps(graph_to_dict(g))))
        assert graph_to_dict(g2) == graph_to_dict(g)


class TestValidation:
    def test_non_dict_rejected(self):
        with pytest.raises(AgreementError):
            graph_from_dict([1, 2, 3])  # type: ignore[arg-type]

    def test_malformed_principal(self):
        with pytest.raises(AgreementError):
            graph_from_dict({"principals": [{"capacity": 5}]})

    def test_malformed_agreement(self):
        with pytest.raises(AgreementError):
            graph_from_dict({
                "principals": [{"name": "A"}, {"name": "B"}],
                "agreements": [{"grantor": "A"}],
            })

    def test_semantic_validation_applies(self):
        # Deserialisation runs the same checks as construction.
        with pytest.raises(AgreementError, match="100%"):
            graph_from_dict({
                "principals": [{"name": "A"}, {"name": "B"}, {"name": "C"}],
                "agreements": [
                    {"grantor": "A", "grantee": "B", "lb": 0.7, "ub": 0.8},
                    {"grantor": "A", "grantee": "C", "lb": 0.7, "ub": 0.8},
                ],
            })


class TestCliIntegration:
    def test_inspect_file_and_save(self, fig3_graph, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "g.json"
        dump_graph(fig3_graph, str(path))
        rc = main(["inspect", "--file", str(path)])
        assert rc == 0
        assert "1140.0" in capsys.readouterr().out

        out_path = tmp_path / "saved.json"
        rc = main(["inspect", "A:10", "B", "A-B:0.5", "--save", str(out_path)])
        assert rc == 0
        assert load_graph(str(out_path)).agreement("A", "B").lb == 0.5

    def test_inspect_requires_some_graph(self, capsys):
        from repro.cli import main

        assert main(["inspect"]) == 2
        assert "error" in capsys.readouterr().err

    def test_inspect_rejects_both(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["inspect", "A:1", "--file", "x.json"]) == 2
