import pytest

from repro.core.tickets import Currency, Ticket, TicketKind


class TestTicket:
    def test_fraction(self):
        t = Ticket(TicketKind.MANDATORY, issuer="A", holder="B", amount=40.0)
        assert t.fraction(100.0) == pytest.approx(0.4)

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            Ticket(TicketKind.OPTIONAL, "A", "B", amount=-1.0)

    def test_self_issue_rejected(self):
        with pytest.raises(ValueError):
            Ticket(TicketKind.MANDATORY, "A", "A", amount=1.0)

    def test_unique_ids(self):
        a = Ticket(TicketKind.MANDATORY, "A", "B", 1.0)
        b = Ticket(TicketKind.MANDATORY, "A", "B", 1.0)
        assert a.ticket_id != b.ticket_id


class TestCurrency:
    def test_issue_and_hold(self):
        cur_a = Currency("A", 100.0)
        cur_b = Currency("B", 100.0)
        t = cur_a.issue(TicketKind.MANDATORY, "B", 40.0)
        cur_b.receive(t)
        assert cur_a.issued == [t]
        assert cur_b.held == [t]

    def test_receive_wrong_holder_rejected(self):
        cur_a = Currency("A")
        cur_c = Currency("C")
        t = cur_a.issue(TicketKind.MANDATORY, "B", 10.0)
        with pytest.raises(ValueError):
            cur_c.receive(t)

    def test_mandatory_overissue_rejected(self):
        cur = Currency("A", 100.0)
        cur.issue(TicketKind.MANDATORY, "B", 70.0)
        with pytest.raises(ValueError, match="mandatory"):
            cur.issue(TicketKind.MANDATORY, "C", 40.0)

    def test_optional_can_overcommit(self):
        # Upper bounds are best-effort: optional tickets may exceed 100%.
        cur = Currency("A", 100.0)
        cur.issue(TicketKind.OPTIONAL, "B", 80.0)
        cur.issue(TicketKind.OPTIONAL, "C", 80.0)
        assert len(cur.issued) == 2

    def test_mandatory_issued_fraction(self):
        cur = Currency("A", 200.0)
        cur.issue(TicketKind.MANDATORY, "B", 50.0)
        assert cur.mandatory_issued_fraction() == pytest.approx(0.25)

    def test_issued_fractions_by_holder(self):
        cur = Currency("A", 100.0)
        cur.issue(TicketKind.MANDATORY, "B", 40.0)
        cur.issue(TicketKind.OPTIONAL, "B", 20.0)
        fr = cur.issued_fractions()
        assert fr["B"][TicketKind.MANDATORY] == pytest.approx(0.4)
        assert fr["B"][TicketKind.OPTIONAL] == pytest.approx(0.2)

    def test_inflation_dilutes(self):
        # The paper: face value changes renegotiate agreements implicitly.
        cur = Currency("A", 100.0)
        cur.issue(TicketKind.MANDATORY, "B", 40.0)
        cur.inflate(2.0)
        assert cur.mandatory_issued_fraction() == pytest.approx(0.2)

    def test_bad_inflation_rejected(self):
        with pytest.raises(ValueError):
            Currency("A").inflate(0.0)

    def test_exact_full_mandatory_allowed(self):
        cur = Currency("A", 100.0)
        cur.issue(TicketKind.MANDATORY, "B", 60.0)
        cur.issue(TicketKind.MANDATORY, "C", 40.0)
        assert cur.mandatory_issued_fraction() == pytest.approx(1.0)
