"""Vector (multi-resource) extension of the calculus."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.agreements import Agreement, AgreementError, AgreementGraph
from repro.core.flows import closed_form_flows
from repro.core.multiresource import (
    bottleneck_rate,
    compute_multiresource_access,
)

RES = ("cpu", "net")


def _graph():
    g = AgreementGraph()
    g.add_principal("A")
    g.add_principal("B")
    g.add_principal("C")
    g.add_agreement(Agreement("A", "B", 0.4, 0.6))
    g.add_agreement(Agreement("B", "C", 0.6, 1.0))
    return g


def _caps():
    return {"A": {"cpu": 1000.0, "net": 500.0}, "B": {"cpu": 1500.0, "net": 3000.0}}


class TestVectorAccess:
    def test_each_type_matches_scalar_calculus(self):
        """Every resource slice must equal the scalar calculus run on that
        type's capacities — the factorisation is shared, outputs per type."""
        g = _graph()
        acc = compute_multiresource_access(g, _caps(), RES)
        for r, res in enumerate(RES):
            scalar_graph = AgreementGraph()
            for name in g.names:
                scalar_graph.add_principal(
                    name, capacity=_caps().get(name, {}).get(res, 0.0)
                )
            for a in g.agreements():
                scalar_graph.add_agreement(a)
            f = closed_form_flows(scalar_graph)
            np.testing.assert_allclose(acc.MC[:, r], f.MC, atol=1e-9)
            np.testing.assert_allclose(acc.MI[:, :, r], f.MI, atol=1e-9)
            np.testing.assert_allclose(acc.OI[:, :, r], f.OI, atol=1e-9)

    def test_fig3_cpu_slice(self):
        acc = compute_multiresource_access(_graph(), _caps(), RES)
        # cpu capacities are exactly Fig 3's numbers.
        assert acc.mandatory("C", "cpu") == pytest.approx(1140.0)
        assert acc.optional("C", "cpu") == pytest.approx(960.0)

    def test_conservation_per_type(self):
        acc = compute_multiresource_access(_graph(), _caps(), RES)
        acc.check_conservation()

    def test_scalar_view_is_access_levels(self):
        from repro.core.access import AccessLevels

        acc = compute_multiresource_access(_graph(), _caps(), RES)
        view = acc.scalar_view("net")
        assert isinstance(view, AccessLevels)
        assert view.mandatory("C") == pytest.approx(acc.mandatory("C", "net"))

    def test_unknown_resource_rejected(self):
        with pytest.raises(AgreementError):
            compute_multiresource_access(_graph(), {"A": {"gpu": 1.0}}, RES)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            compute_multiresource_access(_graph(), {"A": {"cpu": -1.0}}, RES)

    def test_empty_resources_rejected(self):
        with pytest.raises(ValueError):
            compute_multiresource_access(_graph(), {}, ())

    def test_entitlement_accessor(self):
        acc = compute_multiresource_access(_graph(), _caps(), RES)
        mi, oi = acc.entitlement("C", "B", "net")
        assert mi == pytest.approx(3000.0 * 0.6)


class TestBottleneckRate:
    def test_min_across_types(self):
        ent = np.array([100.0, 30.0])
        assert bottleneck_rate(ent, {"cpu": 1.0, "net": 1.0}, RES) == pytest.approx(30.0)
        assert bottleneck_rate(ent, {"cpu": 2.0, "net": 0.1}, RES) == pytest.approx(50.0)

    def test_zero_demand_type_ignored(self):
        ent = np.array([100.0, 0.0])
        assert bottleneck_rate(ent, {"cpu": 1.0}, RES) == pytest.approx(100.0)

    def test_no_demand_at_all(self):
        assert bottleneck_rate(np.array([1.0, 1.0]), {}, RES) == 0.0

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            bottleneck_rate(np.array([1.0, 1.0]), {"cpu": -1.0}, RES)


@st.composite
def cap_tables(draw):
    names = ["P0", "P1", "P2"]
    return {
        name: {
            res: draw(st.floats(min_value=0.0, max_value=1000.0))
            for res in RES
        }
        for name in names
    }


class TestProperties:
    @given(cap_tables())
    @settings(max_examples=60, deadline=None)
    def test_conservation_random_capacities(self, caps):
        g = AgreementGraph()
        for name in ("P0", "P1", "P2"):
            g.add_principal(name)
        g.add_agreement(Agreement("P0", "P1", 0.3, 0.5))
        g.add_agreement(Agreement("P1", "P2", 0.2, 0.7))
        acc = compute_multiresource_access(g, caps, RES)
        acc.check_conservation()

    @given(st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=30, deadline=None)
    def test_linearity_in_capacity(self, scale):
        g = _graph()
        a1 = compute_multiresource_access(g, _caps(), RES)
        scaled = {
            p: {r: v * scale for r, v in vec.items()} for p, vec in _caps().items()
        }
        a2 = compute_multiresource_access(g, scaled, RES)
        np.testing.assert_allclose(a2.MI, a1.MI * scale, rtol=1e-9)
