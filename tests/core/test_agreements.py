import numpy as np
import pytest

from repro.core.agreements import Agreement, AgreementError, AgreementGraph
from repro.core.tickets import TicketKind


class TestAgreement:
    def test_valid(self):
        a = Agreement("A", "B", 0.2, 0.8)
        assert a.optional == pytest.approx(0.6)

    def test_zero_width(self):
        assert Agreement("A", "B", 0.5, 0.5).optional == 0.0

    def test_self_agreement_rejected(self):
        with pytest.raises(AgreementError):
            Agreement("A", "A", 0.1, 0.2)

    def test_lb_above_ub_rejected(self):
        with pytest.raises(AgreementError):
            Agreement("A", "B", 0.8, 0.2)

    def test_negative_lb_rejected(self):
        with pytest.raises(AgreementError):
            Agreement("A", "B", -0.1, 0.2)

    def test_ub_above_one_rejected(self):
        with pytest.raises(AgreementError):
            Agreement("A", "B", 0.1, 1.5)

    def test_str(self):
        assert "A->B" in str(Agreement("A", "B", 0.1, 0.2))


class TestAgreementGraph:
    def test_duplicate_principal_rejected(self):
        g = AgreementGraph()
        g.add_principal("A")
        with pytest.raises(AgreementError):
            g.add_principal("A")

    def test_unknown_principal_rejected(self):
        g = AgreementGraph()
        g.add_principal("A")
        with pytest.raises(AgreementError, match="unknown"):
            g.add_agreement(Agreement("A", "B", 0.1, 0.2))

    def test_duplicate_agreement_rejected(self, fig3_graph):
        with pytest.raises(AgreementError, match="duplicate"):
            fig3_graph.add_agreement(Agreement("A", "B", 0.1, 0.2))

    def test_grantor_cannot_overpromise(self):
        g = AgreementGraph()
        for name in ("A", "B", "C"):
            g.add_principal(name, capacity=100.0)
        g.add_agreement(Agreement("A", "B", 0.7, 0.9))
        with pytest.raises(AgreementError, match="100%"):
            g.add_agreement(Agreement("A", "C", 0.4, 0.5))

    def test_matrices(self, fig3_graph):
        L = fig3_graph.lower_bounds()
        U = fig3_graph.upper_bounds()
        V = fig3_graph.capacities()
        ia, ib, ic = (fig3_graph.index(x) for x in "ABC")
        assert L[ia, ib] == pytest.approx(0.4)
        assert U[ia, ib] == pytest.approx(0.6)
        assert L[ib, ic] == pytest.approx(0.6)
        assert U[ib, ic] == pytest.approx(1.0)
        np.testing.assert_allclose(V, [1000.0, 1500.0, 0.0])

    def test_remove_agreement(self, fig3_graph):
        fig3_graph.remove_agreement("A", "B")
        assert fig3_graph.agreement("A", "B") is None
        with pytest.raises(AgreementError):
            fig3_graph.remove_agreement("A", "B")

    def test_index_unknown(self, fig3_graph):
        with pytest.raises(AgreementError):
            fig3_graph.index("Z")

    def test_contains_len(self, fig3_graph):
        assert "A" in fig3_graph
        assert "Z" not in fig3_graph
        assert len(fig3_graph) == 3

    def test_total_granted_lb(self, fig3_graph):
        assert fig3_graph.total_granted_lb("A") == pytest.approx(0.4)
        assert fig3_graph.total_granted_lb("C") == 0.0

    def test_mint_materialises_tickets(self, fig3_graph):
        currencies = fig3_graph.mint()
        a_issued = currencies["A"].issued
        kinds = sorted(t.kind.value for t in a_issued)
        assert kinds == ["mandatory", "optional"]
        mand = next(t for t in a_issued if t.kind is TicketKind.MANDATORY)
        assert mand.amount == pytest.approx(40.0)  # 0.4 * face 100
        assert currencies["B"].held  # B holds A's tickets

    def test_mint_skips_zero_tickets(self):
        g = AgreementGraph()
        g.add_principal("A", capacity=10.0)
        g.add_principal("B")
        g.add_agreement(Agreement("A", "B", 0.0, 0.5))  # no mandatory part
        currencies = g.mint()
        assert all(t.kind is TicketKind.OPTIONAL for t in currencies["A"].issued)

    def test_copy_is_independent(self, fig3_graph):
        c = fig3_graph.copy()
        c.remove_agreement("A", "B")
        assert fig3_graph.agreement("A", "B") is not None

    def test_validate_passes(self, fig3_graph):
        fig3_graph.validate()

    def test_names_order_stable(self):
        g = AgreementGraph()
        for name in ("X", "A", "M"):
            g.add_principal(name)
        assert g.names == ["X", "A", "M"]
