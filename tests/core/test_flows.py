"""Tests for the transitive flow computation — the heart of the calculus.

Includes the paper's Fig 3 worked example as ground truth and
property-based conservation tests on random agreement DAGs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.agreements import Agreement, AgreementError, AgreementGraph
from repro.core.flows import closed_form_flows, path_flows, spectral_radius


class TestFig3GroundTruth:
    """Every number from the paper's worked example."""

    def test_gross_currency_values(self, fig3_graph):
        f = closed_form_flows(fig3_graph)
        np.testing.assert_allclose(f.M, [1000.0, 1900.0, 1140.0])

    def test_final_mandatory(self, fig3_graph):
        f = closed_form_flows(fig3_graph)
        np.testing.assert_allclose(f.MC, [600.0, 760.0, 1140.0])

    def test_final_optional(self, fig3_graph):
        f = closed_form_flows(fig3_graph)
        np.testing.assert_allclose(f.OC, [400.0, 1340.0, 960.0], atol=1e-9)

    def test_entitlement_matrix(self, fig3_graph):
        f = closed_form_flows(fig3_graph)
        # C's mandatory entitlement on B's server: 1500 * 0.6 = 900; and on
        # A's (transitively): 1000 * 0.4 * 0.6 = 240.
        assert f.entitlement("C", "B")[0] == pytest.approx(900.0)
        assert f.entitlement("C", "A")[0] == pytest.approx(240.0)
        assert f.entitlement("B", "A")[0] == pytest.approx(160.0)

    def test_conservation(self, fig3_graph):
        closed_form_flows(fig3_graph).check_conservation()

    def test_paths_match_closed_form(self, fig3_graph):
        f1 = closed_form_flows(fig3_graph)
        f2 = path_flows(fig3_graph)
        for attr in ("M", "Obar", "MC", "OC", "MI", "OI"):
            np.testing.assert_allclose(
                getattr(f1, attr), getattr(f2, attr), atol=1e-9, err_msg=attr
            )


class TestEdgeCases:
    def test_empty_graph(self):
        f = closed_form_flows(AgreementGraph())
        assert f.MC.size == 0

    def test_single_principal(self):
        g = AgreementGraph()
        g.add_principal("A", capacity=50.0)
        f = closed_form_flows(g)
        assert f.mandatory("A") == pytest.approx(50.0)
        assert f.optional("A") == pytest.approx(0.0)

    def test_no_agreements_identity(self):
        g = AgreementGraph()
        for i in range(4):
            g.add_principal(f"P{i}", capacity=10.0 * (i + 1))
        f = closed_form_flows(g)
        np.testing.assert_allclose(f.MC, g.capacities())
        np.testing.assert_allclose(f.MI, np.diag(g.capacities()))

    def test_full_transfer_chain(self):
        # A gives everything to B, B everything to C.
        g = AgreementGraph()
        g.add_principal("A", capacity=100.0)
        g.add_principal("B")
        g.add_principal("C")
        g.add_agreement(Agreement("A", "B", 1.0, 1.0))
        g.add_agreement(Agreement("B", "C", 1.0, 1.0))
        f = closed_form_flows(g)
        assert f.mandatory("A") == pytest.approx(0.0)
        assert f.mandatory("B") == pytest.approx(0.0)
        assert f.mandatory("C") == pytest.approx(100.0)

    def test_unknown_principal(self, fig3_graph):
        f = closed_form_flows(fig3_graph)
        with pytest.raises(AgreementError):
            f.mandatory("Z")

    def test_cycle_with_moderate_bounds_converges(self):
        g = AgreementGraph()
        g.add_principal("A", capacity=100.0)
        g.add_principal("B", capacity=100.0)
        g.add_agreement(Agreement("A", "B", 0.3, 0.4))
        g.add_agreement(Agreement("B", "A", 0.3, 0.4))
        f = closed_form_flows(g)
        f.check_conservation()
        # Symmetric cycle: both end up with their own capacity.
        assert f.mandatory("A") == pytest.approx(f.mandatory("B"))
        assert f.MC.sum() == pytest.approx(200.0)

    def test_divergent_mandatory_cycle_rejected(self):
        g = AgreementGraph()
        g.add_principal("A", capacity=100.0)
        g.add_principal("B", capacity=100.0)
        g.add_agreement(Agreement("A", "B", 1.0, 1.0))
        g.add_agreement(Agreement("B", "A", 1.0, 1.0))
        with pytest.raises(AgreementError, match="spectral radius"):
            closed_form_flows(g)

    def test_divergent_optional_cycle_rejected(self):
        g = AgreementGraph()
        g.add_principal("A", capacity=100.0)
        g.add_principal("B", capacity=100.0)
        g.add_agreement(Agreement("A", "B", 0.0, 1.0))
        g.add_agreement(Agreement("B", "A", 0.0, 1.0))
        with pytest.raises(AgreementError, match="spectral radius"):
            closed_form_flows(g)

    def test_path_flows_handles_divergent_cycle(self):
        # The paper's formulation excludes cycles, so it stays finite where
        # the closed form diverges.
        g = AgreementGraph()
        g.add_principal("A", capacity=100.0)
        g.add_principal("B", capacity=100.0)
        g.add_agreement(Agreement("A", "B", 1.0, 1.0))
        g.add_agreement(Agreement("B", "A", 1.0, 1.0))
        f = path_flows(g)
        assert np.isfinite(f.MC).all()
        # Each principal re-exports 100% of its currency, so nothing is
        # *retained* as mandatory; the circulating value is reclaimable
        # (optional): own 100 + the partner's 100 flowing in.
        assert f.mandatory("A") == pytest.approx(0.0)
        assert f.optional("A") == pytest.approx(200.0)

    def test_max_len_truncation(self, fig3_graph):
        # With paths of length <= 1, the transitive A->C flow disappears.
        f = path_flows(fig3_graph, max_len=1)
        assert f.entitlement("C", "A")[0] == pytest.approx(0.0)
        assert f.entitlement("C", "B")[0] == pytest.approx(900.0)

    def test_spectral_radius_empty(self):
        assert spectral_radius(np.zeros((0, 0))) == 0.0


def _random_dag(names, caps, edges):
    g = AgreementGraph()
    for name, cap in zip(names, caps):
        g.add_principal(name, capacity=cap)
    budget = {name: 1.0 for name in names}
    for i, j, lb, width in edges:
        if i >= j:
            continue  # DAG: only forward edges
        gi, gj = names[i], names[j]
        lb = min(lb, budget[gi])
        if lb < 0 or g.agreement(gi, gj) is not None:
            continue
        ub = min(1.0, lb + width)
        try:
            g.add_agreement(Agreement(gi, gj, lb, ub))
            budget[gi] -= lb
        except AgreementError:
            pass
    return g


@st.composite
def dag_graphs(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    names = [f"P{i}" for i in range(n)]
    caps = [draw(st.floats(min_value=0.0, max_value=1000.0)) for _ in range(n)]
    n_edges = draw(st.integers(min_value=0, max_value=n * 2))
    edges = [
        (
            draw(st.integers(min_value=0, max_value=n - 1)),
            draw(st.integers(min_value=0, max_value=n - 1)),
            draw(st.floats(min_value=0.0, max_value=0.5)),
            draw(st.floats(min_value=0.0, max_value=0.5)),
        )
        for _ in range(n_edges)
    ]
    return _random_dag(names, caps, edges)


class TestConservationProperties:
    @given(dag_graphs())
    @settings(max_examples=120, deadline=None)
    def test_mandatory_entitlements_partition_capacity(self, g):
        f = closed_form_flows(g)
        np.testing.assert_allclose(f.MI.sum(axis=0), f.V, atol=1e-6)

    @given(dag_graphs())
    @settings(max_examples=120, deadline=None)
    def test_row_sums_equal_access_levels(self, g):
        f = closed_form_flows(g)
        np.testing.assert_allclose(f.MI.sum(axis=1), f.MC, atol=1e-6)
        np.testing.assert_allclose(f.OI.sum(axis=1), f.OC, atol=1e-6)

    @given(dag_graphs())
    @settings(max_examples=80, deadline=None)
    def test_paths_equal_closed_form_on_dags(self, g):
        f1 = closed_form_flows(g)
        f2 = path_flows(g)
        np.testing.assert_allclose(f1.MI, f2.MI, atol=1e-6)
        np.testing.assert_allclose(f1.OI, f2.OI, atol=1e-6)

    @given(dag_graphs())
    @settings(max_examples=80, deadline=None)
    def test_everything_nonnegative(self, g):
        f = closed_form_flows(g)
        for arr in (f.M, f.Obar, f.MC, f.OC, f.MI, f.OI):
            assert (np.asarray(arr) >= -1e-9).all()

    @given(dag_graphs())
    @settings(max_examples=80, deadline=None)
    def test_total_mandatory_is_total_capacity(self, g):
        f = closed_form_flows(g)
        assert f.MC.sum() == pytest.approx(f.V.sum(), abs=1e-6)
