"""Dynamic agreement interpretation (§2.2)."""

import numpy as np
import pytest

from repro.core.agreements import Agreement, AgreementError, AgreementGraph
from repro.core.dynamic import DynamicAccessManager
from repro.cluster.client import ClientMachine
from repro.cluster.server import Server
from repro.l7.redirector import L7Redirector
from repro.scheduling.window import WindowConfig
from repro.sim.engine import Simulator
from repro.sim.monitor import RateMeter


def _manager():
    g = AgreementGraph()
    g.add_principal("S", capacity=320.0)
    g.add_principal("A")
    g.add_principal("B")
    g.add_agreement(Agreement("S", "A", 0.2, 1.0))
    g.add_agreement(Agreement("S", "B", 0.8, 1.0))
    return DynamicAccessManager(g)


class TestManager:
    def test_lazy_versioned_recompute(self):
        mgr = _manager()
        a1 = mgr.access
        assert mgr.access is a1          # cached while unchanged
        mgr.set_capacity("S", 640.0)
        a2 = mgr.access
        assert a2 is not a1
        assert a2.mandatory("B") == pytest.approx(512.0)

    def test_renegotiate(self):
        mgr = _manager()
        mgr.renegotiate("S", "B", 0.5, 1.0)
        assert mgr.access.mandatory("B") == pytest.approx(160.0)

    def test_renegotiate_rolls_back_on_violation(self):
        mgr = _manager()
        with pytest.raises(AgreementError):
            mgr.renegotiate("S", "B", 0.9, 1.0)   # 0.2 + 0.9 > 1
        # The original agreement survives the failed renegotiation.
        assert mgr.access.mandatory("B") == pytest.approx(256.0)

    def test_renegotiate_missing(self):
        mgr = _manager()
        with pytest.raises(AgreementError):
            mgr.renegotiate("A", "B", 0.1, 0.2)

    def test_add_remove_agreement(self):
        mgr = _manager()
        mgr.remove_agreement("S", "A")
        assert mgr.access.mandatory("A") == pytest.approx(0.0)
        mgr.add_agreement(Agreement("S", "A", 0.1, 0.5))
        assert mgr.access.mandatory("A") == pytest.approx(32.0)

    def test_add_principal(self):
        mgr = _manager()
        mgr.add_principal("C", capacity=100.0)
        assert mgr.access.mandatory("C") == pytest.approx(100.0)

    def test_subscribers_pushed(self):
        mgr = _manager()
        seen = []
        mgr.subscribe(lambda acc: seen.append(acc.mandatory("B")))
        assert seen == [pytest.approx(256.0)]    # immediate push
        mgr.set_capacity("S", 160.0)
        assert seen[-1] == pytest.approx(128.0)

    def test_version_increments(self):
        mgr = _manager()
        v0 = mgr.version
        mgr.set_capacity("S", 100.0)
        mgr.renegotiate("S", "A", 0.1, 1.0)
        assert mgr.version == v0 + 2


class TestMidRunRenegotiation:
    def test_service_rates_shift_after_renegotiation(self):
        """Flip A and B's guarantees mid-run: the redirector adopts the new
        levels on the next window and the measured split flips."""
        sim = Simulator()
        meter = RateMeter(1.0)
        mgr = _manager()
        srv = Server(
            sim, "S", 320.0, owner="S",
            on_complete=lambda r, s: meter.record(r.principal, sim.now),
        )
        red = L7Redirector(sim, "R", mgr.access, {"S": srv}, window=WindowConfig(0.1))
        mgr.subscribe(red.set_access)
        ClientMachine(sim, "CA", "A", red, rate=270.0, rng=np.random.default_rng(1))
        ClientMachine(sim, "CB", "B", red, rate=270.0, rng=np.random.default_rng(2))

        def renegotiate():
            mgr.renegotiate("S", "B", 0.2, 1.0)
            mgr.renegotiate("S", "A", 0.8, 1.0)

        sim.schedule(20.0, renegotiate)
        sim.run(until=40.0)
        # Before: B guaranteed 256 -> B ~256, A ~64.
        assert meter.mean_rate("B", 5.0, 20.0) == pytest.approx(256.0, rel=0.1)
        assert meter.mean_rate("A", 5.0, 20.0) == pytest.approx(64.0, rel=0.15)
        # After the flip: A ~256, B ~64.
        assert meter.mean_rate("A", 25.0, 40.0) == pytest.approx(256.0, rel=0.1)
        assert meter.mean_rate("B", 25.0, 40.0) == pytest.approx(64.0, rel=0.15)

    def test_set_access_rejects_principal_mismatch(self):
        sim = Simulator()
        mgr = _manager()
        srv = Server(sim, "S", 320.0, owner="S")
        red = L7Redirector(sim, "R", mgr.access, {"S": srv})
        other = AgreementGraph()
        other.add_principal("X", capacity=1.0)
        from repro.core.access import compute_access_levels

        with pytest.raises(ValueError):
            red.set_access(compute_access_levels(other))
