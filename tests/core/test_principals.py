import pytest

from repro.core.principals import Principal


class TestPrincipal:
    def test_basic_construction(self):
        p = Principal("A", capacity=100.0)
        assert p.name == "A"
        assert p.capacity == 100.0
        assert p.face_value == 100.0

    def test_zero_capacity_consumer(self):
        assert Principal("C").capacity == 0.0

    def test_str(self):
        assert str(Principal("org-1")) == "org-1"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Principal("")

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            Principal("A", capacity=-1.0)

    def test_nonpositive_face_value_rejected(self):
        with pytest.raises(ValueError, match="face value"):
            Principal("A", face_value=0.0)

    def test_frozen(self):
        p = Principal("A")
        with pytest.raises(AttributeError):
            p.capacity = 5.0  # type: ignore[misc]

    def test_equality_by_value(self):
        assert Principal("A", 10.0) == Principal("A", 10.0)
        assert Principal("A", 10.0) != Principal("A", 20.0)
