import pytest

from repro.lp import Model, available_backends, solve
from repro.lp.scipy_backend import scipy_available


def _toy():
    m = Model()
    x = m.var("x", ub=3.0)
    m.maximize(x)
    return m, x


class TestFacade:
    def test_available_backends_contains_simplex(self):
        assert "simplex" in available_backends()

    def test_auto_solves(self):
        m, x = _toy()
        s = solve(m, backend="auto")
        assert s.value(x) == pytest.approx(3.0)

    def test_explicit_backends_agree(self):
        m, x = _toy()
        results = {b: solve(m, backend=b).objective for b in available_backends()}
        vals = list(results.values())
        assert all(v == pytest.approx(vals[0]) for v in vals)

    def test_unknown_backend(self):
        m, _ = _toy()
        with pytest.raises(ValueError, match="unknown backend"):
            solve(m, backend="cplex")

    @pytest.mark.skipif(not scipy_available(), reason="scipy missing")
    def test_backend_recorded_in_solution(self):
        m, _ = _toy()
        assert solve(m, backend="scipy").backend == "scipy"
        assert solve(m, backend="simplex").backend == "simplex"
