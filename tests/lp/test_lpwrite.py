"""LP-format writer/reader round-trip."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.lp import Model, Status, solve
from repro.lp.lpwrite import read_lp, write_lp


def _toy():
    m = Model()
    x = m.var("x", ub=3.0)
    y = m.var("y", lb=-2.0, ub=2.0)
    z = m.var("z", lb=-math.inf)
    m.add(x + 2 * y <= 4, name="cap")
    m.add(x - y >= -1)
    m.add(x + y + z == 2)
    m.maximize(2 * x + y - 0.5 * z)
    return m


class TestWrite:
    def test_sections_present(self):
        text = write_lp(_toy())
        for token in ("Maximize", "Subject To", "Bounds", "End", "cap:"):
            assert token in text

    def test_free_variable_marked(self):
        assert "z free" in write_lp(_toy())

    def test_minimize_header(self):
        m = Model()
        x = m.var("x", ub=1.0)
        m.minimize(x)
        assert write_lp(m).startswith("Minimize")

    def test_empty_objective(self):
        m = Model()
        m.var("x", ub=1.0)
        assert "obj: 0" in write_lp(m)


class TestRoundTrip:
    def test_toy_roundtrip_solves_identically(self):
        m1 = _toy()
        m2 = read_lp(write_lp(m1))
        s1 = solve(m1, backend="scipy")
        s2 = solve(m2, backend="scipy")
        assert s1.status == s2.status
        assert s1.objective == pytest.approx(s2.objective, abs=1e-9)

    def test_scheduler_lp_roundtrip(self, fig9_graph):
        """The real community window LP survives the round trip."""
        from repro.core.access import compute_access_levels
        from repro.lp.model import Model as M

        # Rebuild the window model by hand via the scheduler's pieces is
        # complex; instead serialise a model with the same structure.
        acc = compute_access_levels(fig9_graph)
        m = M("community")
        theta = m.var("theta", ub=1.0)
        xs = {}
        w = acc.per_window(0.1)
        for i, p in enumerate(acc.names):
            for k, q in enumerate(acc.names):
                hi = float(w.MI[i, k] + w.OI[i, k])
                if hi > 0:
                    xs[(p, q)] = m.var(f"x_{p}_{q}", ub=hi)
        for p in acc.names:
            row = [v for (a, _), v in xs.items() if a == p]
            if row:
                m.add(sum(row) >= 8.0 * theta)
                m.add(sum(row) <= 40.0)
        m.maximize(theta)
        m2 = read_lp(write_lp(m))
        s1, s2 = solve(m, backend="scipy"), solve(m2, backend="scipy")
        assert s1.objective == pytest.approx(s2.objective, abs=1e-9)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-3, max_value=3),
                st.floats(min_value=-3, max_value=3),
                st.floats(min_value=-5, max_value=5),
            ),
            min_size=1, max_size=5,
        ),
        st.lists(st.floats(min_value=0.5, max_value=6.0), min_size=2, max_size=2),
        st.lists(st.floats(min_value=-2.0, max_value=2.0), min_size=2, max_size=2),
    )
    @settings(max_examples=80, deadline=None)
    def test_random_roundtrip_property(self, rows, ubs, objs):
        m = Model()
        x = m.var("x0", ub=ubs[0])
        y = m.var("x1", lb=-1.0, ub=ubs[1])
        for (a, b, rhs) in rows:
            m.add(a * x + b * y <= rhs)
        m.maximize(objs[0] * x + objs[1] * y)
        m2 = read_lp(write_lp(m))
        s1 = solve(m, backend="scipy")
        s2 = solve(m2, backend="scipy")
        assert s1.status == s2.status
        if s1.status is Status.OPTIMAL:
            assert s1.objective == pytest.approx(s2.objective, abs=1e-7)


class TestReadErrors:
    def test_missing_relation(self):
        bad = "Maximize\n obj: x\nSubject To\n c0: x 4\nEnd\n"
        with pytest.raises(Exception):
            read_lp(bad)

    def test_unparseable_bound(self):
        bad = "Maximize\n obj: x\nSubject To\n c0: x <= 4\nBounds\n what??\nEnd\n"
        with pytest.raises(Exception):
            read_lp(bad)
