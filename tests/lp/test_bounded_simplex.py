"""Bounded-variable revised simplex: unit cases + cross-validation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lp import Model, Status, solve
from repro.lp.bounded_simplex import solve_bounded_simplex
from repro.lp.scipy_backend import scipy_available


class TestBasicCases:
    def test_textbook_maximum(self):
        m = Model()
        x, y = m.var("x"), m.var("y", ub=2.0)
        m.add(x + y <= 4)
        m.add(x <= 3)
        m.maximize(x + 2 * y)
        s = solve_bounded_simplex(m)
        assert s.status is Status.OPTIMAL
        assert s.objective == pytest.approx(6.0)

    def test_pure_bound_flip_problem(self):
        # No constraints at all: the optimum is reached by bound flips only.
        m = Model()
        x = m.var("x", lb=1.0, ub=5.0)
        y = m.var("y", lb=-2.0, ub=3.0)
        m.minimize(x - 2 * y)
        s = solve_bounded_simplex(m)
        assert s.value(x) == pytest.approx(1.0)
        assert s.value(y) == pytest.approx(3.0)
        assert s.objective == pytest.approx(-5.0)

    def test_equality_constraint(self):
        m = Model()
        x, y = m.var("x"), m.var("y")
        m.add(x + y == 10)
        m.maximize(y - x)
        s = solve_bounded_simplex(m)
        assert s.value(y) == pytest.approx(10.0)

    def test_infeasible(self):
        m = Model()
        x = m.var("x", lb=5.0)
        m.add(x <= 1)
        m.maximize(x)
        assert solve_bounded_simplex(m).status is Status.INFEASIBLE

    def test_unbounded(self):
        m = Model()
        x = m.var("x")
        m.maximize(x)
        assert solve_bounded_simplex(m).status is Status.UNBOUNDED

    def test_free_variables(self):
        m = Model()
        u = m.var("u", lb=-math.inf)
        v = m.var("v", lb=-math.inf, ub=10.0)
        m.add(u + v == 3)
        m.minimize(u - v)
        s = solve_bounded_simplex(m)
        assert s.objective == pytest.approx(-17.0)

    def test_negative_lower_bounds(self):
        m = Model()
        x = m.var("x", lb=-5.0, ub=-1.0)
        m.add(x >= -3)
        m.minimize(x)
        s = solve_bounded_simplex(m)
        assert s.value(x) == pytest.approx(-3.0)

    def test_degenerate(self):
        m = Model()
        x = m.var("x", ub=1.0)
        for _ in range(3):
            m.add(x <= 1)
        m.maximize(x)
        assert solve_bounded_simplex(m).objective == pytest.approx(1.0)

    def test_iteration_limit(self):
        m = Model()
        xs = [m.var(f"x{i}", ub=1.0) for i in range(6)]
        for i in range(5):
            m.add(xs[i] + xs[i + 1] <= 1.5)
        m.maximize(sum(xs))
        s = solve_bounded_simplex(m, max_iter=1)
        assert s.status is Status.ITERATION_LIMIT

    def test_community_window_lp(self, fig9_graph):
        """The real workload: a community window solved by all backends."""
        from repro.core.access import compute_access_levels
        from repro.scheduling.community import CommunityScheduler
        from repro.scheduling.window import WindowConfig

        acc = compute_access_levels(fig9_graph)
        results = {}
        for be in ("bounded", "simplex", "scipy"):
            s = CommunityScheduler(acc, WindowConfig(0.1), backend=be).schedule(
                {"A": 40.0, "B": 40.0}
            )
            results[be] = (s.theta, s.served("A"), s.served("B"))
        for be, vals in results.items():
            assert vals[0] == pytest.approx(results["scipy"][0], abs=1e-6), be
            assert vals[1] == pytest.approx(results["scipy"][1], abs=1e-5), be


@st.composite
def boxed_lp(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    m_rows = draw(st.integers(min_value=0, max_value=5))
    model = Model()
    xs = []
    for i in range(n):
        lo = draw(st.floats(min_value=-4.0, max_value=2.0))
        hi = lo + draw(st.floats(min_value=0.1, max_value=6.0))
        xs.append(model.var(f"x{i}", lb=lo, ub=hi))
    for _ in range(m_rows):
        coefs = [draw(st.floats(min_value=-2.0, max_value=2.0)) for _ in range(n)]
        rhs = draw(st.floats(min_value=-4.0, max_value=8.0))
        model.add(sum(c * x for c, x in zip(coefs, xs)) <= rhs)
    model.maximize(
        sum(draw(st.floats(min_value=-3.0, max_value=3.0)) * x for x in xs)
    )
    return model


@pytest.mark.skipif(not scipy_available(), reason="scipy missing")
class TestCrossValidation:
    @given(boxed_lp())
    @settings(max_examples=200, deadline=None)
    def test_matches_scipy_on_boxed_lps(self, model):
        s1 = solve(model, backend="bounded")
        s2 = solve(model, backend="scipy")
        assert s1.status == s2.status
        if s1.status is Status.OPTIMAL:
            scale = max(1.0, abs(s2.objective))
            assert abs(s1.objective - s2.objective) <= 1e-6 * scale

    @given(boxed_lp())
    @settings(max_examples=80, deadline=None)
    def test_solution_feasible(self, model):
        s = solve(model, backend="bounded")
        if s.status is not Status.OPTIMAL:
            return
        c, A_ub, b_ub, A_eq, b_eq, bounds = model.to_arrays()
        x = s.x
        if A_ub.size:
            assert (A_ub @ x <= b_ub + 1e-6).all()
        for xi, (lo, hi) in zip(x, bounds):
            assert lo - 1e-7 <= xi <= hi + 1e-7

    @given(boxed_lp())
    @settings(max_examples=80, deadline=None)
    def test_matches_row_based_simplex(self, model):
        s1 = solve(model, backend="bounded")
        s2 = solve(model, backend="simplex")
        assert s1.status == s2.status
        if s1.status is Status.OPTIMAL:
            scale = max(1.0, abs(s2.objective))
            assert abs(s1.objective - s2.objective) <= 1e-6 * scale
