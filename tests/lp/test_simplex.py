"""From-scratch simplex: unit cases plus hypothesis cross-validation
against scipy's HiGHS on random bounded LPs."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.lp import Model, Status, solve
from repro.lp.scipy_backend import scipy_available
from repro.lp.simplex import simplex_arrays, solve_simplex


class TestBasicCases:
    def test_textbook_maximum(self):
        m = Model()
        x, y = m.var("x"), m.var("y", ub=2.0)
        m.add(x + y <= 4)
        m.add(x <= 3)
        m.maximize(x + 2 * y)
        s = solve_simplex(m)
        assert s.status is Status.OPTIMAL
        assert s.objective == pytest.approx(6.0)  # x=2, y=2

    def test_minimization(self):
        m = Model()
        x = m.var("x", lb=1.0)
        y = m.var("y", lb=2.0)
        m.add(x + y >= 5)
        m.minimize(3 * x + y)
        s = solve_simplex(m)
        assert s.objective == pytest.approx(7.0)  # x=1, y=4

    def test_equality_constraint(self):
        m = Model()
        x, y = m.var("x"), m.var("y")
        m.add(x + y == 10)
        m.maximize(y - x)
        s = solve_simplex(m)
        assert s.value(y) == pytest.approx(10.0)

    def test_infeasible(self):
        m = Model()
        x = m.var("x", lb=5.0)
        m.add(x <= 1)
        m.maximize(x)
        assert solve_simplex(m).status is Status.INFEASIBLE

    def test_unbounded(self):
        m = Model()
        x = m.var("x")
        m.maximize(x)
        assert solve_simplex(m).status is Status.UNBOUNDED

    def test_free_variables(self):
        m = Model()
        u = m.var("u", lb=-math.inf)
        v = m.var("v", lb=-math.inf, ub=10.0)
        m.add(u + v == 3)
        m.minimize(u - v)
        s = solve_simplex(m)
        assert s.status is Status.OPTIMAL
        assert s.objective == pytest.approx(-17.0)  # v=10, u=-7

    def test_upper_bounded_only_var(self):
        m = Model()
        x = m.var("x", lb=-math.inf, ub=5.0)
        m.add(x >= -2)
        m.minimize(x)
        s = solve_simplex(m)
        assert s.value(x) == pytest.approx(-2.0)

    def test_degenerate_redundant_constraints(self):
        m = Model()
        x = m.var("x", ub=1.0)
        for _ in range(3):
            m.add(x <= 1)
        m.add(x + 0 * m.var("y") == 1)
        m.maximize(x)
        s = solve_simplex(m)
        assert s.objective == pytest.approx(1.0)

    def test_zero_objective(self):
        m = Model()
        x = m.var("x", ub=3.0)
        m.add(x >= 1)
        m.maximize(0 * x)
        s = solve_simplex(m)
        assert s.status is Status.OPTIMAL
        assert 1.0 - 1e-9 <= s.value(x) <= 3.0 + 1e-9

    def test_iteration_limit(self):
        m = Model()
        xs = [m.var(f"x{i}", ub=1.0) for i in range(8)]
        for i in range(7):
            m.add(xs[i] + xs[i + 1] <= 1.5)
        m.maximize(sum(xs))
        s = solve_simplex(m, max_iter=1)
        assert s.status is Status.ITERATION_LIMIT

    def test_arrays_entrypoint(self):
        res = simplex_arrays(
            c=np.array([-1.0]),
            A_ub=np.array([[1.0]]),
            b_ub=np.array([4.0]),
            A_eq=np.zeros((0, 1)),
            b_eq=np.zeros(0),
            bounds=[(0.0, math.inf)],
        )
        assert res.status is Status.OPTIMAL
        assert res.x[0] == pytest.approx(4.0)


@st.composite
def random_lp(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    m_rows = draw(st.integers(min_value=1, max_value=5))
    model = Model()
    f = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False)
    xs = [
        model.var(f"x{i}", ub=draw(st.floats(min_value=0.5, max_value=8.0)))
        for i in range(n)
    ]
    for _ in range(m_rows):
        coefs = [draw(f) for _ in range(n)]
        rhs = draw(st.floats(min_value=0.5, max_value=10.0))
        model.add(sum(c * x for c, x in zip(coefs, xs)) <= rhs)
    model.maximize(
        sum(draw(st.floats(min_value=0.0, max_value=3.0)) * x for x in xs)
    )
    return model


@pytest.mark.skipif(not scipy_available(), reason="scipy missing")
class TestCrossValidation:
    @given(random_lp())
    @settings(max_examples=150, deadline=None)
    def test_matches_scipy(self, model):
        s1 = solve(model, backend="simplex")
        s2 = solve(model, backend="scipy")
        assert s1.status == s2.status
        if s1.status is Status.OPTIMAL:
            scale = max(1.0, abs(s2.objective))
            assert abs(s1.objective - s2.objective) <= 1e-6 * scale

    @given(random_lp())
    @settings(max_examples=60, deadline=None)
    def test_solution_is_feasible(self, model):
        s = solve(model, backend="simplex")
        if s.status is not Status.OPTIMAL:
            return
        c, A_ub, b_ub, A_eq, b_eq, bounds = model.to_arrays()
        x = s.x
        if A_ub.size:
            assert (A_ub @ x <= b_ub + 1e-7).all()
        for xi, (lo, hi) in zip(x, bounds):
            assert lo - 1e-7 <= xi <= hi + 1e-7
