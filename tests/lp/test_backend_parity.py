"""Property test: all LP backends agree, including warm-started re-solves.

The three backends (scipy/HiGHS, dense tableau simplex, bounded-variable
revised simplex) may pick different vertices under degeneracy, but the
*objective* of the community window LP must agree to tight tolerance on
any feasible instance — and a warm-started bounded re-solve must match its
cold-started twin exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.access import compute_access_levels
from repro.experiments.scaling import random_community
from repro.lp import solve
from repro.lp.scipy_backend import scipy_available
from repro.scheduling.community import CommunityScheduler
from repro.scheduling.window import WindowConfig

BACKENDS = ["bounded", "simplex"] + (["scipy"] if scipy_available() else [])


def _instance(seed: int):
    """A random feasible community LP: graph + demand vector."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(5, 9))
    g = random_community(n, seed=seed, servers=int(rng.integers(2, 4)))
    access = compute_access_levels(g)
    demand = {
        name: float(rng.uniform(0.0, 60.0))
        for name in g.names
        if g.principal(name).capacity == 0.0
    }
    return access, demand


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_backends_agree_on_community_lp(seed):
    access, demand = _instance(seed)
    thetas = {}
    for backend in BACKENDS:
        sched = CommunityScheduler(
            access, WindowConfig(0.1), backend=backend,
            lp_cache=False, warm_start=False,
        )
        thetas[backend] = sched.schedule(demand).theta
    vals = list(thetas.values())
    for v in vals[1:]:
        assert v == pytest.approx(vals[0], abs=1e-6), thetas


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_warm_started_resolves_match_cold(seed):
    """Warm start is an accelerator, never a result changer."""
    access, demand = _instance(seed)
    rng = np.random.default_rng(seed + 1)
    # A drift sequence: the first solve seeds the basis, later solves may
    # start from it (or silently fall back when it has gone infeasible).
    seq = [
        {p: max(0.0, d * float(rng.uniform(0.8, 1.2))) for p, d in demand.items()}
        for _ in range(5)
    ]
    warm = CommunityScheduler(access, WindowConfig(0.1), backend="bounded",
                              lp_cache=False, warm_start=True)
    cold = CommunityScheduler(access, WindowConfig(0.1), backend="bounded",
                              lp_cache=False, warm_start=False)
    for q in seq:
        tw = warm.schedule(q).theta
        tc = cold.schedule(q).theta
        assert tw == pytest.approx(tc, abs=1e-9)
    assert warm.lp_solves == cold.lp_solves == len(seq)
    # The warm path must be at least as cheap in simplex iterations.
    assert warm.lp_iterations <= cold.lp_iterations


def test_warm_start_engages_on_steady_drift():
    """On a gently shifted RHS the previous basis is actually reused."""
    access, demand = _instance(7)
    sched = CommunityScheduler(access, WindowConfig(0.1), backend="bounded",
                               lp_cache=False, warm_start=True)
    sched.schedule(demand)
    bumped = {p: d * 1.01 for p, d in demand.items()}
    plan = sched.schedule(bumped)
    assert plan.solution.warm_started
