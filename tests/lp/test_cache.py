"""SolveCache and structural fingerprint behaviour."""

import numpy as np
import pytest

from repro.lp import SolveCache, structural_fingerprint


def test_fingerprint_stable_and_sensitive():
    A = np.arange(6, dtype=float).reshape(2, 3)
    f1 = structural_fingerprint("tag", A, 0.1)
    f2 = structural_fingerprint("tag", A.copy(), 0.1)
    assert f1 == f2
    assert f1 != structural_fingerprint("tag", A + 1e-9, 0.1)
    assert f1 != structural_fingerprint("other", A, 0.1)
    # Shape participates: a reshape of the same bytes is a different model.
    assert f1 != structural_fingerprint("tag", A.reshape(3, 2), 0.1)


def test_exact_keys_hit_only_on_identical_demand():
    c = SolveCache()
    fp = structural_fingerprint("m")
    k1 = c.key(fp, np.array([1.0, 2.0]))
    k2 = c.key(fp, np.array([1.0, 2.0]))
    k3 = c.key(fp, np.array([1.0, 2.0 + 1e-12]))
    assert k1 == k2 != k3
    c.put(k1, "plan")
    assert c.get(k2) == "plan"
    assert c.get(k3) is None
    assert (c.hits, c.misses) == (1, 1)


def test_quantized_keys_bucket_nearby_demand():
    c = SolveCache(quantum=0.5)
    fp = structural_fingerprint("m")
    assert c.key(fp, np.array([10.1])) == c.key(fp, np.array([9.9]))
    assert c.key(fp, np.array([10.1])) != c.key(fp, np.array([10.6]))


def test_tag_partitions_the_keyspace():
    c = SolveCache()
    fp = structural_fingerprint("m")
    d = np.array([3.0])
    assert c.key(fp, d) != c.key(fp, d, tag=("caps", 5.0))


def test_lru_eviction_and_counters():
    c = SolveCache(maxsize=2)
    fp = structural_fingerprint("m")
    keys = [c.key(fp, np.array([float(i)])) for i in range(3)]
    c.put(keys[0], 0)
    c.put(keys[1], 1)
    assert c.get(keys[0]) == 0          # refresh 0: now 1 is the LRU entry
    c.put(keys[2], 2)                   # evicts 1
    assert c.get(keys[1]) is None
    assert c.get(keys[0]) == 0 and c.get(keys[2]) == 2
    assert c.evictions == 1
    assert len(c) == 2
    assert 0.0 < c.hit_rate < 1.0
    c.clear()
    assert len(c) == 0


def test_negative_quantum_rejected():
    with pytest.raises(ValueError):
        SolveCache(quantum=-0.1)
