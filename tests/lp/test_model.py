import math

import numpy as np
import pytest

from repro.lp.model import LinExpr, Model, ModelError, Sense, Status, Var


class TestLinExpr:
    def test_arithmetic(self):
        m = Model()
        x, y = m.var("x"), m.var("y")
        e = 2 * x + 3 * y - 1
        assert e.coeffs[x] == 2.0
        assert e.coeffs[y] == 3.0
        assert e.const == -1.0

    def test_subtraction_and_negation(self):
        m = Model()
        x, y = m.var("x"), m.var("y")
        e = -(x - y)
        assert e.coeffs[x] == -1.0
        assert e.coeffs[y] == 1.0

    def test_rsub(self):
        m = Model()
        x = m.var("x")
        e = 5 - x
        assert e.const == 5.0
        assert e.coeffs[x] == -1.0

    def test_division(self):
        m = Model()
        x = m.var("x")
        assert (x / 2).coeffs[x] == pytest.approx(0.5)

    def test_sum_builtin(self):
        m = Model()
        xs = [m.var(f"x{i}") for i in range(4)]
        e = sum(xs)
        assert all(e.coeffs[x] == 1.0 for x in xs)

    def test_nonlinear_rejected(self):
        m = Model()
        x, y = m.var("x"), m.var("y")
        with pytest.raises(ModelError):
            _ = x * y  # type: ignore[operator]

    def test_repeated_var_coalesces(self):
        m = Model()
        x = m.var("x")
        e = x + x + 2 * x
        assert e.coeffs[x] == 4.0


class TestConstraints:
    def test_le_ge_eq(self):
        m = Model()
        x = m.var("x")
        c1 = x <= 5
        c2 = x >= 1
        c3 = x + 1 == 3
        assert c1.sense is Sense.LE and c1.rhs == pytest.approx(5.0)
        assert c2.sense is Sense.GE and c2.rhs == pytest.approx(1.0)
        assert c3.sense is Sense.EQ and c3.rhs == pytest.approx(2.0)

    def test_expr_vs_expr(self):
        m = Model()
        x, y = m.var("x"), m.var("y")
        c = x + 1 <= y + 4
        assert c.rhs == pytest.approx(3.0)
        assert c.expr.coeffs[y] == -1.0


class TestModel:
    def test_duplicate_var_rejected(self):
        m = Model()
        m.var("x")
        with pytest.raises(ModelError):
            m.var("x")

    def test_getitem(self):
        m = Model()
        x = m.var("x")
        assert m["x"] is x

    def test_var_bad_bounds(self):
        m = Model()
        with pytest.raises(ModelError):
            m.var("x", lb=2.0, ub=1.0)

    def test_add_non_constraint_rejected(self):
        m = Model()
        m.var("x")
        with pytest.raises(ModelError):
            m.add(True)  # type: ignore[arg-type]

    def test_to_arrays_shapes(self):
        m = Model()
        x, y = m.var("x"), m.var("y", ub=4.0)
        m.add(x + y <= 3)
        m.add(x - y >= -1)
        m.add(x + 2 * y == 2)
        m.maximize(x + y)
        c, A_ub, b_ub, A_eq, b_eq, bounds = m.to_arrays()
        assert c.shape == (2,)
        assert A_ub.shape == (2, 2)   # GE folded into LE
        assert A_eq.shape == (1, 2)
        assert bounds[1] == (0.0, 4.0)
        # maximisation negates the objective for the minimising backends
        np.testing.assert_allclose(c, [-1.0, -1.0])

    def test_solution_value_of_expr(self):
        m = Model()
        x = m.var("x", ub=2.0)
        m.maximize(x)
        from repro.lp import solve

        sol = solve(m, backend="simplex")
        assert sol.value(x) == pytest.approx(2.0)
        assert sol.value(2 * x + 1) == pytest.approx(5.0)

    def test_solution_values_by_name(self):
        m = Model()
        x = m.var("x", ub=1.0)
        m.maximize(x)
        from repro.lp import solve

        sol = solve(m, backend="simplex")
        assert sol.values() == {"x": pytest.approx(1.0)}

    def test_nonoptimal_solution_has_no_values(self):
        from repro.lp.model import Solution

        s = Solution(status=Status.INFEASIBLE)
        assert not s.optimal
        assert math.isnan(s.objective)
