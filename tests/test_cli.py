"""CLI entry point."""

import pytest

from repro.cli import main, parse_graph_spec


class TestParseGraphSpec:
    def test_principals_and_agreements(self):
        g = parse_graph_spec(["A:1000", "B:1500", "C", "A-B:0.4:0.6", "B-C:0.6:1.0"])
        assert g.names == ["A", "B", "C"]
        assert g.principal("A").capacity == 1000.0
        assert g.principal("C").capacity == 0.0
        assert g.agreement("A", "B").ub == pytest.approx(0.6)

    def test_point_agreement(self):
        g = parse_graph_spec(["A:10", "B", "A-B:0.5"])
        a = g.agreement("A", "B")
        assert (a.lb, a.ub) == (0.5, 0.5)

    def test_malformed_agreement(self):
        with pytest.raises(ValueError):
            parse_graph_spec(["A", "B", "A-B-C:0.5"])

    def test_malformed_principal(self):
        with pytest.raises(ValueError):
            parse_graph_spec(["A:1:2:3"])


class TestCommands:
    def test_inspect(self, capsys):
        rc = main(["inspect", "A:1000", "B:1500", "C", "A-B:0.4:0.6", "B-C:0.6:1.0"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1140.0" in out      # C's transitive mandatory
        assert "C on B" in out

    def test_inspect_bad_spec_returns_error(self, capsys):
        rc = main(["inspect", "A-B:0.4"])       # unknown principals
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_figures_subset(self, capsys):
        rc = main(["figures", "--only", "fig1,fig3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fig1: ok" in out and "fig3: ok" in out

    def test_figures_unknown_id(self, capsys):
        rc = main(["figures", "--only", "fig99"])
        assert rc == 1
        assert "unknown figure" in capsys.readouterr().out

    def test_report_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        rc = main([
            "report", "--scale", "0.06", "--output", str(out_file),
        ])
        assert rc == 0
        text = out_file.read_text()
        assert "fig3" in text
        assert "reproduced exactly: yes" in text

    def test_figures_plot_flag(self, capsys):
        rc = main(["figures", "--only", "fig7", "--scale", "0.1", "--plot"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fig7: ok" in out
        assert "|" in out and "* A" in out   # the terminal chart rendered

    def test_baseline(self, capsys):
        rc = main(["baseline", "--duration", "8"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "coordinated" in out and "wrr" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestChaosSharded:
    """``chaos --shards R`` exit-code contract: 0 parity, 1 diverged,
    2 invalid plan (typed error on stderr, never a traceback)."""

    SCALE = "0.02"   # 60-epoch fig6 world: fast but non-degenerate

    def _plan(self, tmp_path, shard=0, at=2.0, mode="exc"):
        from repro.faults.plan import FaultPlan, ShardRevoke

        path = tmp_path / "plan.json"
        path.write_text(FaultPlan(
            events=[ShardRevoke(at=at, shard=shard, mode=mode)],
            name="one-death",
        ).to_json())
        return str(path)

    def test_matrix_parity_exits_zero(self, capsys):
        rc = main(["chaos", "--shards", "2", "--scale", self.SCALE])
        out = capsys.readouterr().out
        assert rc == 0
        assert "crash-recovery matrix" in out
        for cell in ("exc", "kill", "multi", "reassign"):
            assert cell in out
        assert "MISMATCH" not in out

    def test_plan_with_valid_shard_exits_zero(self, tmp_path, capsys):
        rc = main(["chaos", "--shards", "2", "--scale", self.SCALE,
                   "--plan", self._plan(tmp_path, shard=1)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "shard 1: exc at epoch" in out
        assert "digest match" in out

    def test_out_of_range_shard_is_typed_exit_two(self, tmp_path, capsys):
        rc = main(["chaos", "--shards", "2", "--scale", self.SCALE,
                   "--plan", self._plan(tmp_path, shard=7)])
        captured = capsys.readouterr()
        assert rc == 2
        assert "error:" in captured.err
        assert "shard 7 out of range" in captured.err
        assert "Traceback" not in captured.err

    def test_random_with_shards_rejected(self, capsys):
        rc = main(["chaos", "--shards", "2", "--random", "3"])
        captured = capsys.readouterr()
        assert rc == 2
        assert "error:" in captured.err

    def test_save_plan_writes_canonical_shard_plan(self, tmp_path, capsys):
        from repro.faults.plan import FaultPlan, ShardRevoke

        out_file = tmp_path / "shard-plan.json"
        rc = main(["chaos", "--shards", "2", "--scale", self.SCALE,
                   "--save-plan", str(out_file)])
        assert rc == 0
        plan = FaultPlan.from_json(out_file.read_text())
        assert all(isinstance(ev, ShardRevoke) for ev in plan.events)
        assert {ev.mode for ev in plan.events} == {"exc", "kill"}
