"""Checkpoint store and recovery policy: the self-healing substrate.

The recovery contract rests on three properties tested here in
isolation: a :class:`ClusterCheckpoint` round-trips bit-exactly through
its dict/JSON form (including the Philox bit-generator state), the
:class:`CheckpointStore` retains exactly the last K epochs with honest
content digests, and a spill file that does not match its recorded
digests is an error — never silently different state.
"""

import json

import numpy as np
import pytest

from repro.coordination.aggregation import StreamStats
from repro.coordination.checkpoint import (
    CheckpointStore,
    ClusterCheckpoint,
    RecoveryPolicy,
    epoch_digest,
)
from repro.sim.rng import RngStreams


def make_checkpoint(seed=0, draws=17, clock=3.25):
    rng = RngStreams(seed).get("cluster:R1")
    rng.random(draws)
    stats = StreamStats()
    for x in (0.5, 1.5, 9.0):
        stats.observe(x)
    return ClusterCheckpoint(
        rng_state=rng.bit_generator.state,
        carry={"A": 0.125, "B": 0.75},
        response=stats,
        clock=clock,
    ), rng


class TestClusterCheckpoint:
    def test_round_trip_is_bit_exact(self):
        ck, _ = make_checkpoint()
        back = ClusterCheckpoint.from_dict(ck.to_dict())
        assert back.digest() == ck.digest()
        assert back.carry == ck.carry
        assert back.clock == ck.clock
        assert back.response.count == ck.response.count

    def test_rng_state_restores_exact_draw_position(self):
        ck, rng = make_checkpoint(draws=23)
        expected = rng.random(8)   # the draws a restored worker must make
        fresh = RngStreams(0).get("cluster:R1")
        fresh.bit_generator.state = dict(ck.rng_state)
        assert np.array_equal(fresh.random(8), expected)

    def test_round_trip_survives_json(self):
        ck, _ = make_checkpoint()
        back = ClusterCheckpoint.from_dict(json.loads(json.dumps(ck.to_dict())))
        assert back.digest() == ck.digest()

    def test_digest_sensitive_to_every_field(self):
        ck, _ = make_checkpoint()
        variants = [
            ClusterCheckpoint(ck.rng_state, {"A": 0.126, "B": 0.75},
                              ck.response, ck.clock),
            ClusterCheckpoint(ck.rng_state, ck.carry, ck.response, 99.0),
            make_checkpoint(draws=18)[0],
        ]
        digests = {ck.digest()} | {v.digest() for v in variants}
        assert len(digests) == 4

    def test_epoch_digest_order_independent(self):
        a, _ = make_checkpoint(draws=3)
        b, _ = make_checkpoint(draws=5)
        assert epoch_digest({"R1": a, "R2": b}) == \
               epoch_digest(dict([("R2", b), ("R1", a)]))
        assert epoch_digest({"R1": a}) != epoch_digest({"R1": b})


class TestCheckpointStore:
    def test_retains_last_k_epochs(self):
        store = CheckpointStore(retain=2)
        for epoch in range(5):
            ck, _ = make_checkpoint(draws=epoch + 1)
            store.put(epoch, {"R1": ck})
        assert store.epochs == [3, 4]
        assert len(store) == 2
        with pytest.raises(KeyError):
            store.get(1)

    def test_latest_and_audit_digests(self):
        store = CheckpointStore(retain=1)
        first, _ = make_checkpoint(draws=1)
        second, _ = make_checkpoint(draws=2)
        d0 = store.put(0, {"R1": first})
        d1 = store.put(1, {"R1": second})
        epoch, snap = store.latest()
        assert epoch == 1 and snap["R1"].digest() == second.digest()
        # Evicted epochs stay in the audit log.
        assert store.digests == {0: d0, 1: d1}

    def test_bytes_retained_tracks_window(self):
        store = CheckpointStore(retain=1)
        store.put(0, {"R1": make_checkpoint()[0]})
        one = store.bytes_retained
        assert one > 0
        store.put(1, {"R1": make_checkpoint()[0],
                      "R2": make_checkpoint(draws=9)[0]})
        assert store.bytes_retained > one      # bigger epoch replaced it
        assert store.epochs == [1]

    def test_invalid_retain_rejected(self):
        with pytest.raises(ValueError):
            CheckpointStore(retain=0)

    def test_empty_store_has_no_latest(self):
        assert CheckpointStore().latest() is None


class TestSpill:
    def test_spill_round_trip_verified(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        store = CheckpointStore(retain=2, spill_path=path)
        for epoch in range(3):
            store.put(epoch, {"R1": make_checkpoint(draws=epoch + 1)[0]})
        loaded = CheckpointStore.load(path)
        assert loaded.epochs == store.epochs
        for epoch in store.epochs:
            assert loaded.digests[epoch] == store.digests[epoch]
            assert loaded.get(epoch)["R1"].digest() == \
                   store.get(epoch)["R1"].digest()

    def test_corrupt_spill_is_an_error(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        store = CheckpointStore(retain=1, spill_path=path)
        store.put(0, {"R1": make_checkpoint()[0]})
        payload = json.load(open(path))
        (entry,) = payload["epochs"].values()
        entry["clusters"]["R1"]["clock"] += 1.0    # tamper, keep digest
        json.dump(payload, open(path, "w"))
        with pytest.raises(ValueError, match="spill corrupt"):
            CheckpointStore.load(path)


class TestRecoveryPolicy:
    def test_backoff_is_capped_exponential(self):
        policy = RecoveryPolicy(backoff_base=0.05, backoff_factor=2.0,
                                backoff_cap=0.3)
        assert policy.backoff(0) == pytest.approx(0.05)
        assert policy.backoff(1) == pytest.approx(0.10)
        assert policy.backoff(2) == pytest.approx(0.20)
        assert policy.backoff(3) == pytest.approx(0.30)   # capped
        assert policy.backoff(10) == pytest.approx(0.30)

    def test_defaults_degrade_not_abort(self):
        assert RecoveryPolicy().reassign_on_exhaustion is True
        assert RecoveryPolicy().max_restarts >= 1
