"""Checkpoint store and recovery policy: the self-healing substrate.

The recovery contract rests on three properties tested here in
isolation: a :class:`ClusterCheckpoint` round-trips bit-exactly through
its dict/JSON form *and* its fixed binary record form (including the
Philox bit-generator state), the :class:`CheckpointStore` retains
exactly the last K epochs with honest content digests, and a spill file
that does not match its recorded digests is an error — never silently
different state.  Digesting and size accounting are additionally
required to be *cheap*: ``put()`` must perform no pickling and no
hashing (the steady-state epoch loop calls it every window), with
digests computed lazily and cached.
"""

import json
import pickle

import numpy as np
import pytest

from repro.coordination.aggregation import StreamStats
from repro.coordination.checkpoint import (
    CheckpointStore,
    ClusterCheckpoint,
    RecoveryPolicy,
    epoch_digest,
    pack_checkpoint,
    record_nbytes,
    record_words,
    unpack_checkpoint,
)
from repro.sim.rng import RngStreams


def make_checkpoint(seed=0, draws=17, clock=3.25):
    rng = RngStreams(seed).get("cluster:R1")
    rng.random(draws)
    stats = StreamStats()
    for x in (0.5, 1.5, 9.0):
        stats.observe(x)
    return ClusterCheckpoint(
        rng_state=rng.bit_generator.state,
        carry={"A": 0.125, "B": 0.75},
        response=stats,
        clock=clock,
    ), rng


class TestClusterCheckpoint:
    def test_round_trip_is_bit_exact(self):
        ck, _ = make_checkpoint()
        back = ClusterCheckpoint.from_dict(ck.to_dict())
        assert back.digest() == ck.digest()
        assert back.carry == ck.carry
        assert back.clock == ck.clock
        assert back.response.count == ck.response.count

    def test_rng_state_restores_exact_draw_position(self):
        ck, rng = make_checkpoint(draws=23)
        expected = rng.random(8)   # the draws a restored worker must make
        fresh = RngStreams(0).get("cluster:R1")
        fresh.bit_generator.state = dict(ck.rng_state)
        assert np.array_equal(fresh.random(8), expected)

    def test_round_trip_survives_json(self):
        ck, _ = make_checkpoint()
        back = ClusterCheckpoint.from_dict(json.loads(json.dumps(ck.to_dict())))
        assert back.digest() == ck.digest()

    def test_digest_sensitive_to_every_field(self):
        ck, _ = make_checkpoint()
        variants = [
            ClusterCheckpoint(ck.rng_state, {"A": 0.126, "B": 0.75},
                              ck.response, ck.clock),
            ClusterCheckpoint(ck.rng_state, ck.carry, ck.response, 99.0),
            make_checkpoint(draws=18)[0],
        ]
        digests = {ck.digest()} | {v.digest() for v in variants}
        assert len(digests) == 4

    def test_epoch_digest_order_independent(self):
        a, _ = make_checkpoint(draws=3)
        b, _ = make_checkpoint(draws=5)
        assert epoch_digest({"R1": a, "R2": b}) == \
               epoch_digest(dict([("R2", b), ("R1", a)]))
        assert epoch_digest({"R1": a}) != epoch_digest({"R1": b})

    def test_digest_is_cached_on_the_instance(self):
        ck, _ = make_checkpoint()
        assert ck._digest is None          # never computed eagerly
        first = ck.digest()
        assert ck._digest == first         # memoized
        assert ck.digest() is first        # same cached string object


class TestBinaryRecord:
    """The fixed-layout uint64 row the shared-memory ring stores."""

    PRINCIPALS = ["A", "B"]

    def pack(self, ck):
        row = np.zeros(record_words(len(self.PRINCIPALS)), dtype=np.uint64)
        pack_checkpoint(ck, self.PRINCIPALS, row)
        return row

    def test_round_trip_is_bit_exact(self):
        ck, rng = make_checkpoint(draws=23)
        back = unpack_checkpoint(self.pack(ck), self.PRINCIPALS)
        # Bit-exact means the canonical JSON — hence the digest — is
        # identical, not merely approximately equal state.
        assert json.dumps(back.to_dict(), sort_keys=True) == \
               json.dumps(ck.to_dict(), sort_keys=True)
        assert back.digest() == ck.digest()

    def test_restored_rng_resumes_exact_draws(self):
        ck, rng = make_checkpoint(draws=29)
        expected = rng.random(8)
        back = unpack_checkpoint(self.pack(ck), self.PRINCIPALS)
        fresh = RngStreams(0).get("cluster:R1")
        fresh.bit_generator.state = back.rng_state
        assert np.array_equal(fresh.random(8), expected)

    def test_empty_stats_infinities_survive(self):
        ck, _ = make_checkpoint()
        empty = ClusterCheckpoint(ck.rng_state, ck.carry, StreamStats(), 0.0)
        back = unpack_checkpoint(self.pack(empty), self.PRINCIPALS)
        assert back.response.count == 0
        assert back.response.min == np.inf and back.response.max == -np.inf
        assert back.digest() == empty.digest()

    def test_non_philox_state_rejected(self):
        ck, _ = make_checkpoint()
        bogus = ClusterCheckpoint({"bit_generator": "PCG64"},
                                  ck.carry, ck.response, 0.0)
        row = np.zeros(record_words(2), dtype=np.uint64)
        with pytest.raises(ValueError, match="Philox"):
            pack_checkpoint(bogus, self.PRINCIPALS, row)

    def test_wrong_row_shape_rejected(self):
        ck, _ = make_checkpoint()
        with pytest.raises(ValueError, match="row shape"):
            pack_checkpoint(ck, self.PRINCIPALS,
                            np.zeros(3, dtype=np.uint64))


class TestCheckpointStore:
    def test_retains_last_k_epochs(self):
        store = CheckpointStore(retain=2)
        for epoch in range(5):
            ck, _ = make_checkpoint(draws=epoch + 1)
            store.put(epoch, {"R1": ck})
        assert store.epochs == [3, 4]
        assert len(store) == 2
        with pytest.raises(KeyError):
            store.get(1)

    def test_latest_and_lazy_audit_digests(self):
        store = CheckpointStore(retain=1)
        first, _ = make_checkpoint(draws=1)
        second, _ = make_checkpoint(draws=2)
        store.put(0, {"R1": first})
        d0 = store.digest(0)               # digested while retained...
        store.put(1, {"R1": second})       # ...then evicted
        epoch, snap = store.latest()
        assert epoch == 1 and snap["R1"].digest() == second.digest()
        d1 = store.digest(1)
        # Digested-then-evicted epochs stay in the audit log.
        assert store.digests == {0: d0, 1: d1}
        assert d0 == epoch_digest({"R1": first})

    def test_digest_of_unretained_undigested_epoch_is_an_error(self):
        store = CheckpointStore(retain=1)
        store.put(0, {"R1": make_checkpoint(draws=1)[0]})
        store.put(1, {"R1": make_checkpoint(draws=2)[0]})   # evicts 0
        with pytest.raises(KeyError):
            store.digest(0)

    def test_put_performs_no_pickling_or_hashing(self, monkeypatch):
        # The steady-state epoch loop calls put() every window; the whole
        # point of the binary accounting is that it never serializes.
        def boom(*a, **k):
            raise AssertionError("pickle.dumps called inside put()")
        monkeypatch.setattr(pickle, "dumps", boom)
        store = CheckpointStore(retain=2)
        ck, _ = make_checkpoint()
        store.put(0, {"R1": ck})
        # Digests stay lazy too: nothing was hashed on the way in.
        assert store.digests == {}
        assert ck._digest is None

    def test_bytes_retained_is_binary_record_arithmetic(self):
        store = CheckpointStore(retain=1)
        ck = make_checkpoint()[0]
        store.put(0, {"R1": ck})
        one = store.bytes_retained
        assert one == record_nbytes(len(ck.carry))
        store.put(1, {"R1": make_checkpoint()[0],
                      "R2": make_checkpoint(draws=9)[0]})
        assert store.bytes_retained == 2 * one   # bigger epoch replaced it
        assert store.epochs == [1]

    def test_invalid_retain_rejected(self):
        with pytest.raises(ValueError):
            CheckpointStore(retain=0)

    def test_empty_store_has_no_latest(self):
        assert CheckpointStore().latest() is None


class TestSpill:
    def test_spill_round_trip_verified(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        store = CheckpointStore(retain=2, spill_path=path)
        for epoch in range(3):
            store.put(epoch, {"R1": make_checkpoint(draws=epoch + 1)[0]})
        loaded = CheckpointStore.load(path)
        assert loaded.epochs == store.epochs
        for epoch in store.epochs:
            assert loaded.digests[epoch] == store.digests[epoch]
            assert loaded.get(epoch)["R1"].digest() == \
                   store.get(epoch)["R1"].digest()

    def test_corrupt_spill_is_an_error(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        store = CheckpointStore(retain=1, spill_path=path)
        store.put(0, {"R1": make_checkpoint()[0]})
        payload = json.load(open(path))
        (entry,) = payload["epochs"].values()
        entry["clusters"]["R1"]["clock"] += 1.0    # tamper, keep digest
        json.dump(payload, open(path, "w"))
        with pytest.raises(ValueError, match="spill corrupt"):
            CheckpointStore.load(path)


class TestRecoveryPolicy:
    def test_backoff_is_capped_exponential(self):
        policy = RecoveryPolicy(backoff_base=0.05, backoff_factor=2.0,
                                backoff_cap=0.3)
        assert policy.backoff(0) == pytest.approx(0.05)
        assert policy.backoff(1) == pytest.approx(0.10)
        assert policy.backoff(2) == pytest.approx(0.20)
        assert policy.backoff(3) == pytest.approx(0.30)   # capped
        assert policy.backoff(10) == pytest.approx(0.30)

    def test_defaults_degrade_not_abort(self):
        assert RecoveryPolicy().reassign_on_exhaustion is True
        assert RecoveryPolicy().max_restarts >= 1
