from repro.coordination.aggregation import VectorAggregate
from repro.coordination.messages import (
    AggregateBroadcast,
    MessageCounter,
    QueueReport,
)


def _report():
    return QueueReport(
        sender="r1", round_id=3, aggregate=VectorAggregate.local({"A": 1.0})
    )


def _broadcast():
    return AggregateBroadcast(
        round_id=3, aggregate=VectorAggregate.local({"A": 1.0}), issued_at=0.5
    )


class TestMessageCounter:
    def test_counts_by_type(self):
        c = MessageCounter()
        c.count(_report())
        c.count(_report())
        c.count(_broadcast())
        assert c.reports == 2
        assert c.broadcasts == 1
        assert c.total == 3

    def test_by_link(self):
        c = MessageCounter()
        c.count(_report(), link_name="r1->root")
        c.count(_broadcast(), link_name="root->r1")
        c.count(_report(), link_name="r1->root")
        assert c.by_link == {"r1->root": 2, "root->r1": 1}

    def test_unknown_message_ignored(self):
        c = MessageCounter()
        c.count("not a protocol message")
        assert c.total == 0

    def test_records_are_frozen(self):
        import pytest

        with pytest.raises(Exception):
            _report().round_id = 5  # type: ignore[misc]
