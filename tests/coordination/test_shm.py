"""Shared-memory data plane: layout, seqlock protocol, codec round-trips.

The plane's contract has two halves.  *Correctness*: every value read out
of a slot is bit-identical to what the writer published — demand/admitted
columns as float64, checkpoints through the fixed binary record — and a
reader can never observe a half-written slot (the seqlock returns "retry"
instead).  *Economics*: the layout arithmetic in ``segment_nbytes`` and
the per-epoch byte accounting must match the actual views, since the
bench gates on those numbers.

The torn-read stress test races a real writer thread against a reader on
one slot ring: the reader may retry arbitrarily often but must never
return a row mixing two epochs' values.  That is the empirical check
backing the module's documented reliance on x86-64 total store order.
"""

import threading

import numpy as np
import pytest

from repro.coordination.aggregation import StreamStats
from repro.coordination.checkpoint import ClusterCheckpoint, record_words
from repro.coordination.shm import PlaneSpec, ShmDataPlane
from repro.sim.rng import RngStreams

PRINCIPALS = ("A", "B")


def make_checkpoint(draws=7, clock=1.5):
    rng = RngStreams(0).get("cluster:R1")
    rng.random(draws)
    stats = StreamStats()
    for x in (0.25, 2.0):
        stats.observe(x)
    return ClusterCheckpoint(
        rng_state=rng.bit_generator.state,
        carry={"A": 0.5, "B": 0.125},
        response=stats,
        clock=clock,
    )


@pytest.fixture
def plane():
    p = ShmDataPlane.create(
        clusters=["R1[0]", "R1[1]", "R2[0]", "R2[1]"],
        principals=PRINCIPALS, shards=2, depth=2,
    )
    yield p
    p.close()
    p.unlink()


def boundary_for(names, value, ck=None):
    ck = ck if ck is not None else make_checkpoint()
    vec = [value, value + 0.5]
    return {n: (list(vec), [v * 2 for v in vec], ck) for n in names}


class TestLayout:
    def test_segment_nbytes_matches_constructed_views(self, plane):
        C, P = 4, len(PRINCIPALS)
        assert plane.segment_bytes == \
            ShmDataPlane.segment_nbytes(C, P, shards=2, depth=2)
        # ctl + shards*depth*(seq word + C*(2P cols + record)) in words.
        expected = (3 + P) + 2 * 2 * (1 + C * (2 * P + record_words(P)))
        assert plane.segment_bytes == 8 * expected

    def test_byte_accounting(self, plane):
        C, P = 4, len(PRINCIPALS)
        assert plane.boundary_bytes_per_epoch == 8 * (C * 2 * P + (3 + P) + 2)
        assert plane.ring_bytes_per_epoch == 8 * C * record_words(P)

    def test_depth_below_two_rejected(self, plane):
        bad = PlaneSpec(name="x", clusters=("a",), principals=PRINCIPALS,
                        shards=1, depth=1)
        with pytest.raises(ValueError, match="depth"):
            ShmDataPlane(bad, plane._shm, owner=False)


class TestAllocationBlock:
    def test_round_trip_with_absent_principal_as_nan(self, plane):
        plane.write_allocation(3, {"A": 0.75})          # B absent
        ready, frac = plane.poll_allocation(3)
        assert ready and frac == {"A": 0.75}            # key set preserved

    def test_none_frac_is_conservative_marker(self, plane):
        plane.write_allocation(0, None)
        ready, frac = plane.poll_allocation(0)
        assert ready and frac is None

    def test_not_ready_for_other_epochs(self, plane):
        plane.write_allocation(2, {"A": 0.5, "B": 0.5})
        assert plane.poll_allocation(1) == (False, None)
        assert plane.poll_allocation(3) == (False, None)

    def test_exact_float_bits_survive(self, plane):
        vals = {"A": 0.1 + 0.2, "B": 1.0 / 3.0}         # not representable
        plane.write_allocation(0, vals)
        _, frac = plane.poll_allocation(0)
        assert frac == vals                              # == is bitwise here


class TestBoundarySlots:
    def test_publish_then_read_is_bit_exact(self, plane):
        names = ["R1[0]", "R2[0]"]
        plane.publish(0, epoch=5, boundary=boundary_for(names, 1.25))
        rows = plane.try_read_boundary(0, 5, names)
        assert rows is not None
        d, a = rows["R1[0]"]
        assert list(d) == [1.25, 1.75] and list(a) == [2.5, 3.5]

    def test_unpublished_epoch_reads_none(self, plane):
        assert plane.try_read_boundary(0, 0, ["R1[0]"]) is None
        plane.publish(0, epoch=0, boundary=boundary_for(["R1[0]"], 1.0))
        assert plane.try_read_boundary(0, 2, ["R1[0]"]) is None  # same slot

    def test_odd_sequence_word_means_torn(self, plane):
        plane.publish(0, epoch=4, boundary=boundary_for(["R1[0]"], 1.0))
        plane.seq_words(0)[0] = 2 * 4 + 1               # mid-write marker
        assert plane.try_read_boundary(0, 4, ["R1[0]"]) is None

    def test_partial_publish_preserves_other_rows(self, plane):
        # A reassignment survivor republishes only adopted rows; its own
        # earlier writes in the same slot must survive.
        plane.publish(0, epoch=0, boundary=boundary_for(["R1[0]"], 1.0))
        plane.publish(0, epoch=0, boundary=boundary_for(["R2[0]"], 9.0))
        rows = plane.try_read_boundary(0, 0, ["R1[0]", "R2[0]"])
        assert list(rows["R1[0]"][0]) == [1.0, 1.5]
        assert list(rows["R2[0]"][0]) == [9.0, 9.5]

    def test_shards_have_independent_rings(self, plane):
        plane.publish(0, epoch=0, boundary=boundary_for(["R1[0]"], 1.0))
        assert plane.try_read_boundary(1, 0, ["R1[0]"]) is None


class TestCheckpointRing:
    def test_ring_round_trip_preserves_digest(self, plane):
        ck = make_checkpoint(draws=13)
        plane.publish(0, epoch=2, boundary=boundary_for(["R1[0]"], 0.0, ck))
        plane.publish(1, epoch=2, boundary=boundary_for(["R2[1]"], 0.0, ck))
        out = plane.read_checkpoints(2, {"R1[0]": 0, "R2[1]": 1})
        assert out["R1[0]"].digest() == ck.digest()
        assert out["R2[1]"].digest() == ck.digest()

    def test_wrong_epoch_in_slot_is_an_error(self, plane):
        plane.publish(0, epoch=0, boundary=boundary_for(["R1[0]"], 0.0))
        with pytest.raises(RuntimeError, match="checkpoint ring"):
            plane.read_checkpoints(2, {"R1[0]": 0})     # slot holds epoch 0


class TestAttach:
    def test_worker_view_shares_the_owner_segment(self, plane):
        worker = ShmDataPlane.attach(plane.spec)
        try:
            worker.publish(1, epoch=0, boundary=boundary_for(["R1[1]"], 3.0))
            rows = plane.try_read_boundary(1, 0, ["R1[1]"])
            assert rows is not None and list(rows["R1[1]"][0]) == [3.0, 3.5]
            plane.write_allocation(1, {"A": 0.25, "B": 0.5})
            assert worker.poll_allocation(1) == (True, {"A": 0.25, "B": 0.5})
        finally:
            worker.close()                              # owner still unlinks


class TestSeqlockStress:
    def test_reader_never_folds_a_mixed_epoch_row(self):
        # A writer thread publishes epochs as fast as it can into a
        # depth-2 ring; every published row holds the epoch number in all
        # columns.  The reader targets specific epochs: any non-None
        # return must be internally consistent (all values from that one
        # epoch).  With 64 clusters the row copy is slow enough that the
        # writer regularly laps the reader mid-copy, so the seqlock's
        # retry path is exercised for real, not just in theory.
        clusters = [f"C{i}" for i in range(64)]
        plane = ShmDataPlane.create(clusters=clusters, principals=PRINCIPALS,
                                    shards=1, depth=2)
        ck = make_checkpoint()
        stop = threading.Event()
        epochs_written = [0]

        def writer():
            e = 0
            vec = np.empty(len(PRINCIPALS))
            while not stop.is_set():
                vec[:] = float(e)
                plane.publish(
                    0, e,
                    {n: (vec, vec, ck) for n in clusters},
                )
                epochs_written[0] = e
                e += 1

        t = threading.Thread(target=writer)
        t.start()
        try:
            successes = retries = 0
            while successes < 200 and retries < 2_000_000:
                e = epochs_written[0]           # a recently valid epoch
                rows = plane.try_read_boundary(0, e, clusters)
                if rows is None:
                    retries += 1                # torn or lapped: retried
                    continue
                successes += 1
                want = float(e)
                for d, a in rows.values():
                    assert np.all(d == want) and np.all(a == want), \
                        "seqlock let a mixed-epoch row through"
        finally:
            stop.set()
            t.join()
            plane.close()
            plane.unlink()
        assert successes == 200
        # The race is real: the writer lapped the reader at least once.
        assert retries > 0
