import pytest

from repro.coordination.messages import MessageCounter
from repro.coordination.pairwise import build_pairwise
from repro.sim.engine import Simulator


def _run(locals_, duration=1.0, link_delay=0.01, counter=None):
    sim = Simulator()
    ids = list(locals_)
    nodes = build_pairwise(
        sim, ids, period=0.1,
        suppliers={k: (lambda k=k: locals_[k]) for k in ids},
        link_delay=link_delay, counter=counter,
    )
    sim.run(until=duration)
    return sim, nodes


class TestPairwise:
    def test_every_node_sees_global_sum(self):
        locals_ = {"a": {"A": 1.0}, "b": {"A": 2.0, "B": 3.0}, "c": {"B": 0.5}}
        _, nodes = _run(locals_)
        for nid in locals_:
            agg = nodes[nid].view.aggregate
            assert agg.get("A") == pytest.approx(3.0)
            assert agg.get("B") == pytest.approx(3.5)
            assert agg.contributors == 3

    def test_local_contribution_recorded(self):
        _, nodes = _run({"a": {"A": 1.0}, "b": {"A": 5.0}})
        assert nodes["b"].view.local_contribution.get("A") == pytest.approx(5.0)

    def test_message_complexity_is_quadratic(self):
        counter = MessageCounter()
        n = 6
        locals_ = {f"r{i}": {"A": 1.0} for i in range(n)}
        _run(locals_, duration=2.05, counter=counter)
        rounds = 21
        per_round = counter.reports / rounds
        assert per_round == pytest.approx(n * (n - 1), rel=0.05)

    def test_converges_after_one_delay(self):
        """Pairwise is *faster* to converge than the tree (one one-way hop),
        which is exactly the trade against its O(n^2) traffic."""
        sim = Simulator()
        locals_ = {"a": {"A": 1.0}, "b": {"A": 2.0}}
        nodes = build_pairwise(
            sim, list(locals_), period=0.1,
            suppliers={k: (lambda k=k: locals_[k]) for k in locals_},
            link_delay=0.04,
        )
        sim.run(until=0.05)  # one period hasn't even elapsed
        assert nodes["a"].view.aggregate.get("A") == pytest.approx(3.0)

    def test_single_node(self):
        _, nodes = _run({"solo": {"A": 7.0}})
        assert nodes["solo"].view.aggregate.get("A") == pytest.approx(7.0)

    def test_bad_period(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            build_pairwise(sim, ["a"], period=0.0, suppliers={"a": dict})

    def test_allocator_compatible_view(self, fig6_graph):
        """PairwiseNode duck-types AggregationNode for WindowAllocator."""
        from repro.core.access import compute_access_levels
        from repro.scheduling.allocator import WindowAllocator
        from repro.scheduling.window import WindowConfig

        sim = Simulator()
        demand = {"r1": {"A": 27.0}, "r2": {"B": 13.5}}
        nodes = build_pairwise(
            sim, list(demand), period=0.1,
            suppliers={k: (lambda k=k: demand[k]) for k in demand},
            link_delay=0.005,
        )
        sim.run(until=1.0)
        alloc = WindowAllocator(
            compute_access_levels(fig6_graph), WindowConfig(0.1), n_redirectors=2
        )
        alloc.attach(nodes["r1"])
        a = alloc.compute({"A": 27.0})
        assert not a.used_fallback
        assert a.quotas["A"] == pytest.approx(18.5, rel=0.05)
