import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coordination.tree import CombiningTree


class TestConstructors:
    def test_star(self):
        t = CombiningTree.star(["r0", "r1", "r2"])
        assert t.root == "r0"
        assert set(t.children("r0")) == {"r1", "r2"}
        assert t.height() == 1

    def test_chain(self):
        t = CombiningTree.chain(["a", "b", "c", "d"])
        assert t.parent("d") == "c"
        assert t.height() == 3

    def test_balanced_binary(self):
        nodes = [f"n{i}" for i in range(7)]
        t = CombiningTree.balanced(nodes, fanout=2)
        assert t.height() == 2
        assert set(t.children("n0")) == {"n1", "n2"}
        assert set(t.children("n1")) == {"n3", "n4"}

    def test_balanced_fanout_one_is_chain(self):
        nodes = ["a", "b", "c"]
        t = CombiningTree.balanced(nodes, fanout=1)
        assert t.height() == 2

    def test_single_node(self):
        t = CombiningTree.star(["only"])
        assert t.is_leaf("only")
        assert t.messages_per_round() == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CombiningTree.star([])

    def test_bad_fanout(self):
        with pytest.raises(ValueError):
            CombiningTree.balanced(["a"], fanout=0)

    def test_latency_aware_prefers_cheap_edges(self):
        nodes = ["a", "b", "c"]
        lat = np.array([
            [0.0, 1.0, 10.0],
            [1.0, 0.0, 1.0],
            [10.0, 1.0, 0.0],
        ])
        t = CombiningTree.latency_aware(nodes, lat)
        # c attaches through b (cost 1), never directly to a (cost 10)
        assert t.parent("c") == "b"

    def test_latency_aware_shape_validation(self):
        with pytest.raises(ValueError):
            CombiningTree.latency_aware(["a", "b"], np.zeros((3, 3)))

    def test_latency_aware_disconnected(self):
        lat = np.array([[0.0, np.inf], [np.inf, 0.0]])
        with pytest.raises(ValueError, match="disconnected"):
            CombiningTree.latency_aware(["a", "b"], lat)

    def test_explicit_root(self):
        nodes = ["a", "b", "c"]
        lat = np.ones((3, 3)) - np.eye(3)
        t = CombiningTree.latency_aware(nodes, lat, root="b")
        assert t.root == "b"


class TestMessageComplexity:
    def test_tree_vs_pairwise(self):
        t = CombiningTree.star([f"n{i}" for i in range(10)])
        assert t.messages_per_round() == 18                  # 2(n-1)
        assert CombiningTree.pairwise_messages_per_round(10) == 90  # n(n-1)

    @given(st.integers(min_value=2, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_tree_always_cheaper(self, n):
        t = CombiningTree.balanced([f"n{i}" for i in range(n)])
        assert t.messages_per_round() <= CombiningTree.pairwise_messages_per_round(n)


class TestDynamics:
    def test_join(self):
        t = CombiningTree.star(["a", "b"])
        t.join("c", parent="b")
        assert t.parent("c") == "b"
        assert len(t) == 3

    def test_join_duplicate_rejected(self):
        t = CombiningTree.star(["a", "b"])
        with pytest.raises(ValueError):
            t.join("b", parent="a")

    def test_join_unknown_parent_rejected(self):
        t = CombiningTree.star(["a"])
        with pytest.raises(ValueError):
            t.join("x", parent="zzz")

    def test_leave_reattaches_children(self):
        t = CombiningTree.chain(["a", "b", "c"])
        t.leave("b")
        assert t.parent("c") == "a"
        assert "b" not in t.nodes

    def test_leave_root_rejected(self):
        t = CombiningTree.star(["a", "b"])
        with pytest.raises(ValueError):
            t.leave("a")

    def test_invalid_parent_map_rejected(self):
        with pytest.raises(ValueError):
            CombiningTree("a", {"b": "zzz"})


class TestRemoveFailed:
    def test_interior_failure_reparents_to_grandparent(self):
        t = CombiningTree.balanced(["a", "b", "c", "d", "e"], 2)
        moved = t.remove_failed("b")        # children d, e -> root a
        assert moved == {"d": "a", "e": "a"}
        assert t.parent("d") == "a" and t.parent("e") == "a"
        assert "b" not in t

    def test_leaf_failure_moves_nobody(self):
        t = CombiningTree.star(["a", "b", "c"])
        assert t.remove_failed("c") == {}
        assert set(t.nodes) == {"a", "b"}

    def test_root_failure_promotes_first_child(self):
        t = CombiningTree.star(["a", "b", "c", "d"])
        moved = t.remove_failed("a")
        assert t.root == "b"                # first child, deterministic
        assert t.parent("b") is None
        assert moved == {"c": "b", "d": "b"}
        t._validate()                       # still one connected tree

    def test_unknown_and_last_node_rejected(self):
        t = CombiningTree.star(["a", "b"])
        with pytest.raises(ValueError, match="not in tree"):
            t.remove_failed("zzz")
        t.remove_failed("b")
        with pytest.raises(ValueError, match="last node"):
            t.remove_failed("a")

    def test_message_invariant_restored_after_heal(self):
        # Whatever fails, the healed overlay costs 2(n-1) per round again.
        for victim in ("a", "b", "e"):      # root, interior, leaf
            t = CombiningTree.balanced(["a", "b", "c", "d", "e"], 2)
            t.remove_failed(victim)
            assert t.messages_per_round() == 2 * (len(t) - 1)
            assert len(t) == 4

    def test_sequential_failures_down_to_one(self):
        t = CombiningTree.balanced([f"n{i}" for i in range(8)], 2)
        for victim in [f"n{i}" for i in range(7)]:
            t.remove_failed(victim)
            t._validate()
            assert t.messages_per_round() == 2 * (len(t) - 1)
        assert t.nodes == ["n7"]
