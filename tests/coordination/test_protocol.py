"""Combining-tree protocol over simulated links."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.coordination.messages import MessageCounter
from repro.coordination.protocol import GlobalView, build_protocol
from repro.coordination.tree import CombiningTree
from repro.sim.engine import Simulator


def _run(tree_kind, locals_, duration=1.0, link_delay=0.01, period=0.1,
         counter=None):
    sim = Simulator()
    ids = list(locals_)
    if tree_kind == "star":
        tree = CombiningTree.star(ids)
    elif tree_kind == "chain":
        tree = CombiningTree.chain(ids)
    else:
        tree = CombiningTree.balanced(ids, 2)
    suppliers = {k: (lambda k=k: locals_[k]) for k in ids}
    nodes = build_protocol(
        sim, tree, period=period, suppliers=suppliers,
        link_delay=link_delay, counter=counter,
    )
    sim.run(until=duration)
    return sim, tree, nodes


class TestAggregation:
    @pytest.mark.parametrize("kind", ["star", "chain", "balanced"])
    def test_every_node_sees_global_sum(self, kind):
        locals_ = {
            "r0": {"A": 1.0},
            "r1": {"A": 2.0, "B": 1.0},
            "r2": {"B": 5.0},
            "r3": {},
            "r4": {"A": 0.5},
        }
        _, tree, nodes = _run(kind, locals_)
        for nid in tree.nodes:
            agg = nodes[nid].view.aggregate
            assert agg is not None, nid
            assert agg.get("A") == pytest.approx(3.5)
            assert agg.get("B") == pytest.approx(6.0)
            assert agg.contributors == 5

    def test_single_node_sees_itself(self):
        _, _, nodes = _run("star", {"solo": {"A": 7.0}})
        assert nodes["solo"].view.aggregate.get("A") == pytest.approx(7.0)

    def test_local_contribution_recorded(self):
        _, _, nodes = _run("star", {"r0": {"A": 1.0}, "r1": {"A": 9.0}})
        view = nodes["r1"].view
        assert view.local_contribution is not None
        assert view.local_contribution.get("A") == pytest.approx(9.0)

    def test_data_lag_tracks_delay(self):
        sim, _, nodes = _run(
            "star", {"r0": {}, "r1": {"A": 1.0}}, link_delay=0.2, duration=3.0,
            period=0.1,
        )
        # Broadcasts arrive every period (rounds pipeline), so the *receipt*
        # is always fresh — but the data they carry lags by ~2x link delay.
        view = nodes["r1"].view
        assert view.age(sim.now) <= 0.2
        data_lag = sim.now - view.round_id * 0.1
        assert data_lag >= 2 * 0.2

    def test_dynamic_value_changes_propagate(self):
        sim = Simulator()
        state = {"v": 1.0}
        tree = CombiningTree.star(["root", "leaf"])
        nodes = build_protocol(
            sim, tree, period=0.1,
            suppliers={"root": lambda: {}, "leaf": lambda: {"A": state["v"]}},
            link_delay=0.01,
        )
        sim.run(until=1.0)
        assert nodes["root"].view.aggregate.get("A") == pytest.approx(1.0)
        state["v"] = 42.0
        sim.run(until=2.0)
        assert nodes["root"].view.aggregate.get("A") == pytest.approx(42.0)


class TestMessageComplexity:
    def test_message_count_is_2n_minus_2_per_round(self):
        counter = MessageCounter()
        locals_ = {f"r{i}": {"A": 1.0} for i in range(6)}
        _run("balanced", locals_, duration=2.05, period=0.1, counter=counter,
             link_delay=0.001)
        rounds = 20
        per_round = counter.total / rounds
        assert per_round == pytest.approx(2 * (6 - 1), rel=0.15)


class TestGlobalView:
    def test_fresh_and_stale(self):
        view = GlobalView()
        assert view.fresh(now=0.0, max_age=1.0) is None
        from repro.coordination.aggregation import VectorAggregate

        view = GlobalView(aggregate=VectorAggregate.local({"A": 1.0}),
                          round_id=3, received_at=10.0)
        assert view.fresh(now=10.5, max_age=1.0) is not None
        assert view.fresh(now=12.0, max_age=1.0) is None
        assert view.age(11.0) == pytest.approx(1.0)


class TestRobustness:
    def test_missing_supplier_rejected(self):
        sim = Simulator()
        tree = CombiningTree.star(["a", "b"])
        with pytest.raises(ValueError, match="supplier"):
            build_protocol(sim, tree, period=0.1, suppliers={"a": dict})

    def test_bad_period_rejected(self):
        sim = Simulator()
        tree = CombiningTree.star(["a"])
        with pytest.raises(ValueError):
            build_protocol(sim, tree, period=0.0, suppliers={"a": dict})

    def test_flush_forwards_partial_round(self):
        # A child whose report is slower than flush_after must not stall
        # the root forever: the root broadcasts a partial aggregate.
        sim = Simulator()
        tree = CombiningTree.star(["root", "slow"])
        nodes = build_protocol(
            sim, tree, period=0.1,
            suppliers={"root": lambda: {"A": 1.0}, "slow": lambda: {"A": 100.0}},
            link_delay=5.0,       # far beyond the flush timeout
            flush_after=0.09,
        )
        sim.run(until=2.0)
        view = nodes["root"].view
        assert view.aggregate is not None
        assert view.aggregate.get("A") == pytest.approx(1.0)  # partial
        sim.run(until=20.0)
        assert nodes["root"].late_reports > 0

    def test_lossy_links_degrade_gracefully(self):
        """With 15% message loss the protocol keeps delivering views whose
        values stay close to the true aggregate (missing children simply
        drop out of individual rounds)."""
        import numpy as np

        sim = Simulator()
        ids = [f"r{i}" for i in range(6)]
        tree = CombiningTree.star(ids)
        nodes = build_protocol(
            sim, tree, period=0.1,
            suppliers={i: (lambda i=i: {"A": 10.0}) for i in ids},
            link_delay=0.01, loss=0.15, rng=np.random.default_rng(0),
        )
        seen = []
        sim.every(0.5, lambda: seen.append(
            nodes[ids[1]].view.aggregate.get("A")
            if nodes[ids[1]].view.aggregate else None
        ), start=1.0)
        sim.run(until=20.0)
        values = [v for v in seen if v is not None]
        assert len(values) >= 30            # views keep flowing
        # Partial rounds lose at most a couple of contributors.
        assert min(values) >= 30.0
        assert max(values) <= 60.0
        assert np.mean(values) >= 50.0

    def test_node_departure_heals_via_new_tree(self):
        """Operational healing: after a redirector leaves, a protocol over
        the healed tree converges to the survivors' aggregate."""
        sim = Simulator()
        ids = ["a", "b", "c", "d"]
        tree = CombiningTree.balanced(ids, 2)
        tree.leave("b")                     # children reattach to the root
        assert set(tree.nodes) == {"a", "c", "d"}
        nodes = build_protocol(
            sim, tree, period=0.1,
            suppliers={i: (lambda i=i: {"A": 1.0}) for i in ["a", "c", "d"]},
            link_delay=0.01,
        )
        sim.run(until=1.0)
        assert nodes["a"].view.aggregate.get("A") == pytest.approx(3.0)

    @given(st.integers(min_value=1, max_value=12), st.integers(min_value=1, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_aggregate_correct_for_random_sizes(self, n, fanout):
        locals_ = {f"r{i}": {"A": float(i)} for i in range(n)}
        _, tree, nodes = _run("balanced" if fanout > 1 else "chain", locals_,
                              duration=1.5)
        want = sum(range(n))
        for nid in tree.nodes:
            assert nodes[nid].view.aggregate.get("A") == pytest.approx(want)
