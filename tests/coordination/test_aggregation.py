import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coordination.aggregation import StreamStats, VectorAggregate


class TestVectorAggregate:
    def test_merge_sums(self):
        a = VectorAggregate.local({"A": 1.0, "B": 2.0})
        b = VectorAggregate.local({"B": 3.0, "C": 4.0})
        m = a.merge(b)
        assert m.values == {"A": 1.0, "B": 5.0, "C": 4.0}
        assert m.contributors == 2

    def test_merge_does_not_mutate(self):
        a = VectorAggregate.local({"A": 1.0})
        b = VectorAggregate.local({"A": 1.0})
        a.merge(b)
        assert a.values == {"A": 1.0}

    def test_get_default(self):
        assert VectorAggregate().get("missing") == 0.0

    def test_copy_independent(self):
        a = VectorAggregate.local({"A": 1.0})
        c = a.copy()
        c.values["A"] = 99.0
        assert a.values["A"] == 1.0

    def test_merge_associative(self):
        vs = [VectorAggregate.local({"k": float(i)}) for i in range(4)]
        left = vs[0].merge(vs[1]).merge(vs[2]).merge(vs[3])
        right = vs[0].merge(vs[1].merge(vs[2].merge(vs[3])))
        assert left.values == right.values
        assert left.contributors == right.contributors


class TestStreamStats:
    def test_observe(self):
        s = StreamStats()
        for v in (1.0, 2.0, 3.0):
            s.observe(v)
        assert s.count == 3
        assert s.mean == pytest.approx(2.0)
        assert s.variance == pytest.approx(np.var([1, 2, 3]))
        assert s.min == 1.0 and s.max == 3.0

    def test_empty_variance_nan(self):
        assert math.isnan(StreamStats().variance)

    def test_merge_with_empty(self):
        s = StreamStats.of(5.0)
        assert s.merge(StreamStats()).mean == pytest.approx(5.0)
        assert StreamStats().merge(s).count == 1

    def test_sample_variance(self):
        s = StreamStats()
        for v in (1.0, 3.0):
            s.observe(v)
        assert s.sample_variance == pytest.approx(2.0)

    @given(
        st.lists(st.floats(min_value=-1e4, max_value=1e4), min_size=1, max_size=60),
        st.lists(st.floats(min_value=-1e4, max_value=1e4), min_size=1, max_size=60),
    )
    @settings(max_examples=100, deadline=None)
    def test_parallel_merge_matches_sequential(self, xs, ys):
        """Chan's combine: merging partials == observing everything."""
        a, b, total = StreamStats(), StreamStats(), StreamStats()
        for v in xs:
            a.observe(v)
            total.observe(v)
        for v in ys:
            b.observe(v)
            total.observe(v)
        merged = a.merge(b)
        assert merged.count == total.count
        assert merged.mean == pytest.approx(total.mean, rel=1e-9, abs=1e-9)
        assert merged.m2 == pytest.approx(total.m2, rel=1e-6, abs=1e-5)
        assert merged.min == total.min and merged.max == total.max

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_matches_numpy(self, xs):
        s = StreamStats()
        for v in xs:
            s.observe(v)
        assert s.mean == pytest.approx(np.mean(xs), rel=1e-9, abs=1e-9)
        assert s.variance == pytest.approx(np.var(xs), rel=1e-6, abs=1e-8)
