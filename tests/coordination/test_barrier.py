"""EpochBarrier failure model: every bad outcome is a typed error, fast.

The barrier's contract is that a worker that dies, stalls, or breaks the
epoch protocol surfaces as :class:`ShardWorkerError` in the parent —
never a hang.  These tests drive the barrier directly over raw pipes
(no :class:`ShardedRunner`), so each failure mode is isolated.
"""

import multiprocessing as mp
import os

import pytest

from repro.coordination.barrier import (
    AllocationMessage,
    BoundaryMessage,
    EpochBarrier,
    FinishMessage,
    ShardWorkerError,
    WorkerFailure,
)

CTX = mp.get_context("fork" if "fork" in mp.get_all_start_methods()
                     else "spawn")


def _echo_worker(conn):
    """Reply to each AllocationMessage with a matching BoundaryMessage."""
    while True:
        msg = conn.recv()
        if isinstance(msg, FinishMessage):
            return
        conn.send(BoundaryMessage(msg.epoch, 0, {}))


def _crash_worker(conn):
    conn.recv()
    os._exit(7)


def _pipe_pair():
    parent, child = CTX.Pipe()
    return parent, child


class TestHappyPath:
    def test_broadcast_gather_roundtrip(self):
        parent, child = _pipe_pair()
        proc = CTX.Process(target=_echo_worker, args=(child,), daemon=True)
        proc.start()
        child.close()
        barrier = EpochBarrier([parent], [proc], timeout=30.0)
        try:
            for epoch in range(3):
                barrier.broadcast(AllocationMessage(epoch, None))
                (msg,) = barrier.gather(epoch, BoundaryMessage)
                assert msg.epoch == epoch
            barrier.broadcast(FinishMessage(3))
        finally:
            barrier.close(terminate=True)

    def test_len_counts_workers(self):
        a, _ = _pipe_pair()
        b, _ = _pipe_pair()
        assert len(EpochBarrier([a, b])) == 2


class TestFailureModes:
    def test_dead_worker_raises_not_hangs(self):
        parent, child = _pipe_pair()
        proc = CTX.Process(target=_crash_worker, args=(child,), daemon=True)
        proc.start()
        child.close()
        barrier = EpochBarrier([parent], [proc], timeout=30.0)
        try:
            barrier.broadcast(AllocationMessage(0, None))
            with pytest.raises(ShardWorkerError, match="died mid-window"):
                barrier.gather(0, BoundaryMessage)
        finally:
            barrier.close(terminate=True)

    def test_timeout_raises_typed_error(self):
        # No process handle and nothing ever arrives: the deadline, not
        # liveness, must end the wait.
        parent, _child = _pipe_pair()
        barrier = EpochBarrier([parent], timeout=0.2, poll_interval=0.05)
        with pytest.raises(ShardWorkerError, match="no boundary message"):
            barrier.gather(0, BoundaryMessage)

    def test_worker_failure_message_reraised(self):
        parent, child = _pipe_pair()
        child.send(WorkerFailure(0, "ValueError: boom"))
        barrier = EpochBarrier([parent], timeout=5.0)
        with pytest.raises(ShardWorkerError, match="ValueError: boom"):
            barrier.gather(0, BoundaryMessage)

    def test_wrong_message_type_rejected(self):
        parent, child = _pipe_pair()
        child.send(FinishMessage(0))
        barrier = EpochBarrier([parent], timeout=5.0)
        with pytest.raises(ShardWorkerError, match="expected BoundaryMessage"):
            barrier.gather(0, BoundaryMessage)

    def test_epoch_skew_rejected(self):
        parent, child = _pipe_pair()
        child.send(BoundaryMessage(4, 0, {}))
        barrier = EpochBarrier([parent], timeout=5.0)
        with pytest.raises(ShardWorkerError, match="epoch skew"):
            barrier.gather(3, BoundaryMessage)

    def test_broadcast_to_closed_pipe_raises(self):
        parent, child = _pipe_pair()
        parent.close()
        child.close()
        barrier = EpochBarrier([parent])
        with pytest.raises(ShardWorkerError, match="pipe closed"):
            barrier.broadcast(AllocationMessage(0, None))

    def test_mismatched_process_list_rejected(self):
        parent, _child = _pipe_pair()
        with pytest.raises(ValueError):
            EpochBarrier([parent], processes=[])
