"""EpochBarrier failure model: every bad outcome is a typed error, fast.

The barrier's contract is that a worker that dies, stalls, or breaks the
epoch protocol surfaces as :class:`ShardWorkerError` in the parent —
never a hang.  These tests drive the barrier directly over raw pipes
(no :class:`ShardedRunner`), so each failure mode is isolated.
"""

import multiprocessing as mp
import os

import pytest

from repro.coordination.barrier import (
    AllocationMessage,
    BoundaryMessage,
    EpochBarrier,
    FinishMessage,
    ShardWorkerError,
    WorkerFailure,
)

CTX = mp.get_context("fork" if "fork" in mp.get_all_start_methods()
                     else "spawn")


def _echo_worker(conn):
    """Reply to each AllocationMessage with a matching BoundaryMessage."""
    while True:
        msg = conn.recv()
        if isinstance(msg, FinishMessage):
            return
        conn.send(BoundaryMessage(msg.epoch, 0, {}))


def _crash_worker(conn):
    conn.recv()
    os._exit(7)


def _stuck_worker(conn):
    """Never reads, never replies — simulates a wedged worker."""
    import time
    while True:
        time.sleep(60.0)


def _slow_echo_worker(conn, delay):
    import time
    while True:
        msg = conn.recv()
        if isinstance(msg, FinishMessage):
            return
        time.sleep(delay)
        conn.send(BoundaryMessage(msg.epoch, 0, {}))


def _pipe_pair():
    parent, child = CTX.Pipe()
    return parent, child


class TestHappyPath:
    def test_broadcast_gather_roundtrip(self):
        parent, child = _pipe_pair()
        proc = CTX.Process(target=_echo_worker, args=(child,), daemon=True)
        proc.start()
        child.close()
        barrier = EpochBarrier([parent], [proc], timeout=30.0)
        try:
            for epoch in range(3):
                barrier.broadcast(AllocationMessage(epoch, None))
                (msg,) = barrier.gather(epoch, BoundaryMessage)
                assert msg.epoch == epoch
            barrier.broadcast(FinishMessage(3))
        finally:
            barrier.close(terminate=True)

    def test_len_counts_workers(self):
        a, _ = _pipe_pair()
        b, _ = _pipe_pair()
        assert len(EpochBarrier([a, b])) == 2


class TestFailureModes:
    def test_dead_worker_raises_not_hangs(self):
        parent, child = _pipe_pair()
        proc = CTX.Process(target=_crash_worker, args=(child,), daemon=True)
        proc.start()
        child.close()
        barrier = EpochBarrier([parent], [proc], timeout=30.0)
        try:
            barrier.broadcast(AllocationMessage(0, None))
            with pytest.raises(ShardWorkerError, match="died mid-window"):
                barrier.gather(0, BoundaryMessage)
        finally:
            barrier.close(terminate=True)

    def test_timeout_raises_typed_error(self):
        # No process handle and nothing ever arrives: the deadline, not
        # liveness, must end the wait.
        parent, _child = _pipe_pair()
        barrier = EpochBarrier([parent], timeout=0.2, poll_interval=0.05)
        with pytest.raises(ShardWorkerError, match="no boundary message"):
            barrier.gather(0, BoundaryMessage)

    def test_worker_failure_message_reraised(self):
        parent, child = _pipe_pair()
        child.send(WorkerFailure(0, "ValueError: boom"))
        barrier = EpochBarrier([parent], timeout=5.0)
        with pytest.raises(ShardWorkerError, match="ValueError: boom"):
            barrier.gather(0, BoundaryMessage)

    def test_wrong_message_type_rejected(self):
        parent, child = _pipe_pair()
        child.send(FinishMessage(0))
        barrier = EpochBarrier([parent], timeout=5.0)
        with pytest.raises(ShardWorkerError, match="expected BoundaryMessage"):
            barrier.gather(0, BoundaryMessage)

    def test_epoch_skew_rejected(self):
        parent, child = _pipe_pair()
        child.send(BoundaryMessage(4, 0, {}))
        barrier = EpochBarrier([parent], timeout=5.0)
        with pytest.raises(ShardWorkerError, match="epoch skew"):
            barrier.gather(3, BoundaryMessage)

    def test_broadcast_to_closed_pipe_raises(self):
        parent, child = _pipe_pair()
        parent.close()
        child.close()
        barrier = EpochBarrier([parent])
        with pytest.raises(ShardWorkerError, match="pipe closed"):
            barrier.broadcast(AllocationMessage(0, None))

    def test_mismatched_process_list_rejected(self):
        parent, _child = _pipe_pair()
        with pytest.raises(ValueError):
            EpochBarrier([parent], processes=[])


class TestTeardown:
    """Regression: a failed run must leak no worker process or pipe FD.

    The old ``close`` only terminated processes it was asked about and
    left parent pipe ends open; a wedged worker (or one that outlived a
    crashed sibling) survived the run.  ``close(terminate=True)`` must
    now kill and reap *every* slot and null both sides' references.
    """

    def test_close_reaps_all_workers_even_wedged_ones(self):
        conns, procs = [], []
        for _ in range(3):
            parent, child = _pipe_pair()
            proc = CTX.Process(target=_stuck_worker, args=(child,), daemon=True)
            proc.start()
            child.close()
            conns.append(parent)
            procs.append(proc)
        barrier = EpochBarrier(conns, procs, timeout=5.0)
        handles = list(procs)
        barrier.close(terminate=True)
        # Liveness: every worker is dead and reaped, every slot released.
        for proc in handles:
            # A closed handle raises ValueError on is_alive(); either the
            # handle is closed or the process is provably dead.
            try:
                assert not proc.is_alive()
            except ValueError:
                pass
        assert barrier.connections == [None, None, None]
        assert barrier.processes == [None, None, None]

    def test_close_closes_parent_pipe_ends(self):
        parent, child = _pipe_pair()
        proc = CTX.Process(target=_echo_worker, args=(child,), daemon=True)
        proc.start()
        child.close()
        barrier = EpochBarrier([parent], [proc], timeout=5.0)
        barrier.close(terminate=True)
        with pytest.raises(OSError):
            parent.send(AllocationMessage(0, None))

    def test_close_without_processes_just_closes_pipes(self):
        parent, _child = _pipe_pair()
        barrier = EpochBarrier([parent])
        barrier.close()
        assert barrier.connections == [None]


class TestSlotSurgery:
    def test_deactivate_retires_slot(self):
        a, _ca = _pipe_pair()
        b, _cb = _pipe_pair()
        barrier = EpochBarrier([a, b], timeout=5.0)
        barrier.deactivate(0)
        assert barrier.active == [1]
        with pytest.raises(ShardWorkerError, match="deactivated"):
            barrier.send(0, AllocationMessage(0, None))

    def test_replace_installs_new_worker(self):
        parent, child = _pipe_pair()
        proc = CTX.Process(target=_crash_worker, args=(child,), daemon=True)
        proc.start()
        child.close()
        barrier = EpochBarrier([parent], [proc], timeout=5.0)
        barrier.broadcast(AllocationMessage(0, None))
        with pytest.raises(ShardWorkerError):
            barrier.gather(0, BoundaryMessage)
        parent2, child2 = _pipe_pair()
        proc2 = CTX.Process(target=_echo_worker, args=(child2,), daemon=True)
        proc2.start()
        child2.close()
        barrier.replace(0, parent2, proc2)
        try:
            barrier.broadcast(AllocationMessage(1, None))
            (msg,) = barrier.gather(1, BoundaryMessage)
            assert msg.epoch == 1
        finally:
            barrier.close(terminate=True)


class TestPollBackoff:
    """The recv loop backs off exponentially instead of spinning at 50ms."""

    def test_ready_message_needs_one_poll(self):
        parent, child = _pipe_pair()
        child.send(BoundaryMessage(0, 0, {}))
        barrier = EpochBarrier([parent], timeout=5.0)
        barrier.recv(0, 0, BoundaryMessage)
        assert barrier.polls == 1

    def test_slow_worker_polls_logarithmically(self):
        parent, child = _pipe_pair()
        proc = CTX.Process(target=_slow_echo_worker, args=(child, 0.3),
                           daemon=True)
        proc.start()
        child.close()
        barrier = EpochBarrier([parent], [proc], timeout=30.0,
                               poll_interval=0.05, poll_floor=0.001)
        try:
            barrier.broadcast(AllocationMessage(0, None))
            barrier.gather(0, BoundaryMessage)
            # 0.3s of silence: doubling from 1ms and capping at 50ms needs
            # ~12 polls; a flat 1ms spin would need ~300.
            assert 2 <= barrier.polls <= 30
            assert barrier.poll_wait_s >= 0.2
        finally:
            barrier.close(terminate=True)

    def test_poll_floor_clamped_to_interval(self):
        parent, _child = _pipe_pair()
        barrier = EpochBarrier([parent], poll_interval=0.01, poll_floor=0.5)
        assert barrier.poll_floor == 0.01
