"""FailureDetector: suspicion, confirmation, backoff, recovery."""

import pytest

from repro.coordination.failure import FailureDetector


def test_two_silent_timeouts_confirm_death():
    fd = FailureDetector(timeout=1.0)
    fd.watch("p", now=0.0)
    assert fd.check(0.9) == []              # within timeout
    assert fd.check(1.1) == []              # suspected, not confirmed
    assert fd.is_suspected("p") and not fd.is_dead("p")
    assert fd.check(2.0) == []              # second timeout not yet over
    assert fd.check(2.3) == ["p"]           # confirmed once...
    assert fd.is_dead("p")
    assert fd.check(3.0) == []              # ...and only once


def test_single_missed_heartbeat_never_confirms():
    fd = FailureDetector(timeout=1.0)
    fd.watch("p", now=0.0)
    fd.check(1.5)                           # suspect
    fd.heard("p", 1.6)                      # it was just slow
    assert fd.check(2.4) == []
    assert fd.false_suspicions == 1


def test_false_suspicion_doubles_timeout_up_to_cap():
    fd = FailureDetector(timeout=1.0, backoff=2.0, max_timeout=3.0)
    fd.watch("p", now=0.0)
    fd.check(1.5)
    fd.heard("p", 1.6)                      # timeout -> 2.0
    assert fd.check(3.5) == []              # 1.9s silent < 2.0: no suspicion
    assert fd.suspicions == 1
    fd.check(4.0)                           # 2.4s silent: suspect again
    fd.heard("p", 4.1)                      # timeout -> 3.0 (capped)
    fd.check(8.0)
    fd.heard("p", 8.1)                      # would be 8.0 without the cap
    assert fd._peers["p"].timeout == 3.0


def test_heartbeat_from_the_dead_is_recovery():
    revived = []
    fd = FailureDetector(timeout=1.0, on_recovered=revived.append)
    fd.watch("p", now=0.0)
    fd.check(1.5)
    assert fd.check(3.0) == ["p"]
    fd.heard("p", 5.0)
    assert revived == ["p"]
    assert not fd.is_dead("p")
    assert fd._peers["p"].timeout == 1.0    # back to the base timeout


def test_on_dead_callback_and_unwatch():
    died = []
    fd = FailureDetector(timeout=1.0, on_dead=died.append)
    fd.watch("p", now=0.0)
    fd.watch("q", now=0.0)
    fd.unwatch("q")
    fd.heard("q", 0.5)                      # ignored: not watched
    fd.check(1.5)
    fd.check(3.0)
    assert died == ["p"]
    assert fd.peers == ["p"]


def test_parameter_validation():
    with pytest.raises(ValueError, match="timeout"):
        FailureDetector(timeout=0.0)
    with pytest.raises(ValueError, match="backoff"):
        FailureDetector(timeout=1.0, backoff=0.5)
