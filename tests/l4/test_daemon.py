"""User-space daemon driving the L4 switch."""

import numpy as np
import pytest

from repro.cluster.client import ClientMachine
from repro.cluster.server import Server
from repro.core.access import compute_access_levels
from repro.l4.daemon import L4Daemon
from repro.l4.switch import L4Switch
from repro.scheduling.window import WindowConfig
from repro.sim.engine import Simulator

W = WindowConfig(0.1)


def _world(fig9_graph, **daemon_kw):
    sim = Simulator()
    acc = compute_access_levels(fig9_graph)
    completions = {"A": 0, "B": 0}

    def on_c(r, s):
        completions[r.principal] += 1

    sa = Server(sim, "SA", 320.0, owner="A", on_complete=on_c)
    sb = Server(sim, "SB", 320.0, owner="B", on_complete=on_c)
    switch = L4Switch(sim, "SW", acc.names, {"A": sa, "B": sb}, window=W)
    daemon = L4Daemon(sim, "D", switch, acc, window=W, **daemon_kw)
    return sim, switch, daemon, completions


class TestDaemon:
    def test_installs_allocations_every_window(self, fig9_graph):
        sim, switch, daemon, _ = _world(fig9_graph)
        sim.run(until=1.05)
        assert daemon.windows == 10
        assert daemon.last_allocation is not None

    def test_end_to_end_rates(self, fig9_graph):
        sim, switch, daemon, completions = _world(fig9_graph)
        ClientMachine(sim, "C1", "A", switch, rate=400.0, rng=np.random.default_rng(1))
        ClientMachine(sim, "C2", "A", switch, rate=400.0, rng=np.random.default_rng(2))
        ClientMachine(sim, "C3", "B", switch, rate=400.0, rng=np.random.default_rng(3))
        sim.run(until=20.0)
        # Fig 9 phase 1 arithmetic: A 480, B 160 (steady state).
        assert completions["A"] / 20.0 == pytest.approx(480.0, rel=0.08)
        assert completions["B"] / 20.0 == pytest.approx(160.0, rel=0.12)

    def test_conntrack_sweep_runs(self, fig9_graph):
        sim, switch, daemon, _ = _world(fig9_graph, conntrack_sweep=1.0)
        # Open a connection that never completes by bypassing the server:
        switch.conntrack.open(("X", 1, "10.0.0.1", 80), "SA", "A", now=0.0)
        sim.run(until=120.0)
        assert switch.conntrack.lookup(("X", 1, "10.0.0.1", 80)) is None

    def test_switch_survives_daemon_death(self, fig9_graph):
        """If the user-space daemon dies, the kernel switch keeps running
        on its last installed allocation — degraded (stale quotas) but
        never stalled, like the real LVS module would."""
        sim, switch, daemon, completions = _world(fig9_graph)
        ClientMachine(sim, "C1", "A", switch, rate=400.0, rng=np.random.default_rng(4))
        ClientMachine(sim, "C3", "B", switch, rate=400.0, rng=np.random.default_rng(5))
        sim.run(until=10.0)
        before = dict(completions)
        # Emulate daemon death: from now on every "install" just replays
        # the last computed allocation (the kernel module's stale state).
        daemon.allocator.compute = lambda local, **kw: daemon.last_allocation  # type: ignore[assignment]
        sim.run(until=20.0)
        after = {p: completions[p] - before[p] for p in completions}
        # Service continues near the pre-death rates (the frozen quota is a
        # single window's estimate, so some degradation is expected — the
        # property is "no stall", not "no drift").
        assert after["A"] / 10.0 >= 0.75 * 480.0
        assert after["B"] / 10.0 >= 0.75 * 160.0
        assert (after["A"] + after["B"]) / 10.0 <= 640.0 * 1.02

    def test_local_demand_passthrough(self, fig9_graph):
        sim, switch, daemon, _ = _world(fig9_graph)
        assert daemon.local_demand() == switch.local_demand()


class TestAdmissionAccounting:
    """Satellite: per-window admitted/refused streams recorded by the
    daemon via RateMeter bins + StreamingStats, one sample per window."""

    def _run(self, fig9_graph, until=2.05):
        sim, switch, daemon, _ = _world(fig9_graph)
        ClientMachine(sim, "C1", "A", switch, rate=400.0, rng=np.random.default_rng(6))
        ClientMachine(sim, "C3", "B", switch, rate=200.0, rng=np.random.default_rng(7))
        sim.run(until=until)
        return switch, daemon

    def test_meter_totals_match_switch_counters(self, fig9_graph):
        switch, daemon = self._run(fig9_graph)
        for p in ("A", "B"):
            # The meter accumulates exactly the deltas the accounting
            # snapshots consumed, so its total equals the last snapshot;
            # the live switch counter may only be ahead by the part-window
            # of traffic not yet accounted.
            assert daemon.admission_meter.total(f"admitted:{p}") == (
                pytest.approx(daemon._last_admitted[p])
            )
            assert daemon.admission_meter.total(f"refused:{p}") == (
                pytest.approx(daemon._last_dropped[p])
            )
            assert daemon._last_admitted[p] <= switch.admitted[p]
            assert daemon._last_dropped[p] <= switch.dropped[p]

    def test_one_sample_per_window(self, fig9_graph):
        switch, daemon = self._run(fig9_graph)
        assert daemon.windows == 20
        for p in ("A", "B"):
            assert daemon.admitted_stats[p].count == daemon.windows
            assert daemon.refused_stats[p].count == daemon.windows
            times, rates = daemon.admitted_series(p)
            # Zero-weight windows still land a bin, so the series has one
            # point per elapsed window even when a principal was idle.
            assert len(times) == len(rates) == daemon.windows
            rt, rr = daemon.refused_series(p)
            assert len(rt) == len(rr) == daemon.windows

    def test_mean_rate_consistent_with_totals(self, fig9_graph):
        switch, daemon = self._run(fig9_graph)
        for p in ("A", "B"):
            stats = daemon.admitted_stats[p]
            assert stats.mean * stats.count == pytest.approx(
                daemon._last_admitted[p]
            )
