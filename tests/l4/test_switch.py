"""L4 switch: packet path, kernel queues, reinjection, affinity."""

import pytest

from repro.cluster.client import Defer, Drop, Held
from repro.cluster.request import Request
from repro.cluster.server import Server
from repro.core.access import compute_access_levels
from repro.l4.switch import L4Switch, PortSpaceExhausted
from repro.l4.packets import TcpFlags, TcpPacket
from repro.scheduling.allocator import Allocation
from repro.scheduling.window import WindowConfig
from repro.sim.engine import Simulator

W = WindowConfig(0.1)


def _world(fig9_graph, **kw):
    sim = Simulator()
    acc = compute_access_levels(fig9_graph)
    sa = Server(sim, "SA", 320.0, owner="A")
    sb = Server(sim, "SB", 320.0, owner="B")
    switch = L4Switch(sim, "SW", acc.names, {"A": sa, "B": sb}, window=W, **kw)
    return sim, acc, sa, sb, switch


def _alloc(quotas, weights):
    return Allocation(
        quotas=quotas, weights=weights, global_estimate={}, used_fallback=False
    )


def _req(principal="A", client="C1"):
    return Request(principal=principal, client_id=client, created_at=0.0)


class TestAdmission:
    def test_admit_with_quota(self, fig9_graph):
        sim, _, sa, sb, switch = _world(fig9_graph)
        switch.install(_alloc({"A": 10.0}, {"A": {"A": 32.0, "B": 16.0}}))
        done = []
        d = switch.handle(_req("A"), done=lambda r: done.append(r))
        assert isinstance(d, Held)
        sim.run(until=1.0)
        assert len(done) == 1
        assert done[0].served_by in ("SA", "SB")
        assert switch.admitted["A"] == 1

    def test_queue_when_no_quota(self, fig9_graph):
        sim, _, _, _, switch = _world(fig9_graph)
        switch.install(_alloc({"A": 0.0}, {"A": {"A": 32.0}}))
        d = switch.handle(_req("A"))
        assert isinstance(d, Held)
        assert switch.queue_lengths()["A"] == 1

    def test_unknown_principal_dropped(self, fig9_graph):
        _, _, _, _, switch = _world(fig9_graph)
        assert isinstance(switch.handle(_req("nobody")), Drop)

    def test_syn_queue_overflow_defers(self, fig9_graph):
        sim, _, _, _, switch = _world(fig9_graph, max_syn_queue=2)
        switch.install(_alloc({"A": 0.0}, {"A": {"A": 32.0}}))
        decisions = [switch.handle(_req("A")) for _ in range(4)]
        assert [type(d) for d in decisions] == [Held, Held, Defer, Defer]
        assert switch.dropped["A"] == 2

    def test_reinjection_in_next_window(self, fig9_graph):
        sim, _, _, _, switch = _world(fig9_graph)
        switch.install(_alloc({"A": 0.0}, {"A": {"A": 32.0}}))
        done = []
        switch.handle(_req("A"), done=lambda r: done.append(sim.now))
        assert switch.queue_lengths()["A"] == 1
        # Next window has budget: queued SYN reinjected and served.
        switch.install(_alloc({"A": 5.0}, {"A": {"A": 32.0}}))
        sim.run(until=1.0)
        assert done
        assert switch.reinjected["A"] == 1
        assert switch.queue_lengths()["A"] == 0

    def test_reinjection_fifo(self, fig9_graph):
        sim, _, _, _, switch = _world(fig9_graph)
        switch.install(_alloc({"A": 0.0}, {"A": {"A": 32.0}}))
        order = []
        for tag in range(5):
            switch.handle(
                Request(principal="A", client_id=f"c{tag}", created_at=0.0),
                done=lambda r: order.append(r.client_id),
            )
        switch.install(_alloc({"A": 3.0}, {"A": {"A": 32.0}}))
        sim.run(until=0.5)
        assert order == ["c0", "c1", "c2"]


class TestNatAndConntrack:
    def test_connection_state_created_and_torn_down(self, fig9_graph):
        sim, _, _, _, switch = _world(fig9_graph)
        switch.install(_alloc({"A": 10.0}, {"A": {"A": 32.0}}))
        switch.handle(_req("A"))
        assert len(switch.nat) == 1
        assert len(switch.conntrack) == 1
        sim.run(until=1.0)   # response tears down the flow
        assert len(switch.nat) == 0
        assert len(switch.conntrack) == 0

    def test_data_packet_follows_connection(self, fig9_graph):
        sim, _, _, _, switch = _world(fig9_graph)
        switch.install(_alloc({"A": 10.0}, {"A": {"A": 32.0}}))
        req = _req("A")
        switch.handle(req)
        tup = next(iter(switch.conntrack._conns))
        data = TcpPacket(*tup, flags=TcpFlags.ACK, payload_bytes=100)
        assert switch.on_packet(data)
        assert switch.conntrack.lookup(tup).packets == 2

    def test_data_packet_without_state_rejected(self, fig9_graph):
        _, _, _, _, switch = _world(fig9_graph)
        stray = TcpPacket("C9", 1111, "10.0.0.1", 80, flags=TcpFlags.ACK)
        assert not switch.on_packet(stray)

    def test_fin_tears_down(self, fig9_graph):
        sim, _, _, _, switch = _world(fig9_graph)
        switch.install(_alloc({"A": 10.0}, {"A": {"A": 32.0}}))
        switch.handle(_req("A"))
        tup = next(iter(switch.conntrack._conns))
        fin = TcpPacket(*tup, flags=TcpFlags.FIN)
        assert switch.on_packet(fin)
        assert switch.conntrack.lookup(tup) is None
        assert len(switch.nat) == 0

    def test_sweep_idle_removes_nat_with_conntrack(self, fig9_graph):
        # Regression: expiring conntrack alone leaked the NAT entry, so
        # NAT entries != open flows after an idle sweep.
        sim, _, _, _, switch = _world(fig9_graph)
        switch.install(_alloc({"A": 10.0}, {"A": {"A": 32.0}}))
        switch.handle(_req("A"))  # admitted, response still in flight
        assert len(switch.nat) == len(switch.conntrack) == 1
        idle = switch.conntrack.idle_timeout
        assert switch.sweep_idle(now=idle + 1.0) == 1
        assert len(switch.conntrack) == 0
        assert len(switch.nat) == 0  # the entry the old sweep leaked

    def test_sweep_idle_keeps_fresh_flows(self, fig9_graph):
        sim, _, _, _, switch = _world(fig9_graph)
        switch.install(_alloc({"A": 10.0}, {"A": {"A": 32.0}}))
        switch.handle(_req("A"))
        assert switch.sweep_idle(now=1.0) == 0
        assert len(switch.nat) == len(switch.conntrack) == 1


class TestAffinityAndBudgets:
    def test_affinity_reuses_server_within_budget(self, fig9_graph):
        sim, _, _, _, switch = _world(fig9_graph)
        switch.install(_alloc({"A": 20.0}, {"A": {"A": 16.0, "B": 4.0}}))
        for _ in range(5):
            switch.handle(_req("A", client="C1"))
        assert switch.affinity_hits >= 3

    def test_budget_limits_per_server_share(self, fig9_graph):
        sim, _, sa, sb, switch = _world(fig9_graph)
        # 3:1 weights: out of 20 admitted, SB gets at most ~6.
        switch.install(_alloc({"A": 20.0}, {"A": {"A": 15.0, "B": 5.0}}))
        for i in range(20):
            switch.handle(_req("A", client=f"C{i}"))
        sim.run(until=1.0)
        assert sb.total_completed() <= 7
        assert sa.total_completed() >= 13

    def test_affinity_denied_when_budget_spent(self, fig9_graph):
        sim, _, sa, sb, switch = _world(fig9_graph)
        switch.install(_alloc({"A": 4.0}, {"A": {"A": 2.0, "B": 2.0}}))
        # Pin C1 to one server, then exhaust that server's budget: the
        # next request must go to the other server despite affinity.
        switch.handle(_req("A", client="C1"))
        first = switch.conntrack.preferred_server("C1", "A")
        for _ in range(3):
            switch.handle(_req("A", client="C1"))
        sim.run(until=1.0)
        servers_used = {sa.total_completed() > 0, sb.total_completed() > 0}
        assert servers_used == {True}  # both servers saw traffic

    def test_affinity_disabled(self, fig9_graph):
        sim, _, _, _, switch = _world(fig9_graph, affinity=False)
        switch.install(_alloc({"A": 10.0}, {"A": {"A": 5.0, "B": 5.0}}))
        for _ in range(6):
            switch.handle(_req("A", client="C1"))
        assert switch.affinity_hits == 0

    def test_affinity_survives_idle_sweep(self, fig9_graph):
        # Satellite: client affinity is SSL-session-style state, held per
        # (client, principal) — expiring an idle *connection* must not
        # erase it, so the next SYN from the same client still lands on
        # the server the client previously bonded to.
        sim, _, _, _, switch = _world(fig9_graph)
        switch.install(_alloc({"A": 10.0}, {"A": {"A": 8.0, "B": 8.0}}))
        switch.handle(_req("A", client="C1"))
        pinned = switch.conntrack.preferred_server("C1", "A")
        assert pinned is not None
        idle = switch.conntrack.idle_timeout
        assert switch.sweep_idle(now=idle + 1.0) == 1
        assert len(switch.conntrack) == 0
        hits_before = switch.affinity_hits
        switch.handle(_req("A", client="C1"))
        assert switch.affinity_hits == hits_before + 1
        tup = next(iter(switch.conntrack._conns))
        assert switch.conntrack.lookup(tup).server == pinned


class TestLaneParity:
    """The fast lane must be observationally identical to the scalar
    lane: same counters, same completion order, same server picks."""

    def _drive(self, fig9_graph, fast_lane):
        sim, _, sa, sb, switch = _world(fig9_graph, fast_lane=fast_lane)
        done = []
        switch.install(_alloc({"A": 3.0, "B": 2.0},
                              {"A": {"A": 8.0, "B": 4.0},
                               "B": {"A": 2.0, "B": 6.0}}))
        for i in range(8):
            p = "A" if i % 3 else "B"
            switch.handle(
                Request(principal=p, client_id=f"c{i % 4}", created_at=0.0),
                done=lambda r: done.append((sim.now, r.client_id, r.served_by)),
            )
        sim.run(until=0.1)
        # Second window drains part of the queue through reinjection.
        switch.install(_alloc({"A": 2.0, "B": 2.0},
                              {"A": {"A": 8.0, "B": 4.0},
                               "B": {"A": 2.0, "B": 6.0}}))
        sim.run(until=1.0)
        counters = dict(
            admitted=dict(switch.admitted), dropped=dict(switch.dropped),
            queued=dict(switch.queued), reinjected=dict(switch.reinjected),
            affinity_hits=switch.affinity_hits,
            queue_lengths=switch.queue_lengths(),
            completed={"SA": sa.total_completed(), "SB": sb.total_completed()},
        )
        return counters, done

    def test_counters_and_trace_match_scalar(self, fig9_graph):
        fast, fast_done = self._drive(fig9_graph, fast_lane=True)
        scalar, scalar_done = self._drive(fig9_graph, fast_lane=False)
        assert fast == scalar
        assert fast_done == scalar_done

    def test_pick_server_heap_matches_scalar_scan(self, fig9_graph):
        # The best-slack heap must reproduce the scalar lane's linear
        # scan choice-for-choice, including the spill once every
        # budget is exhausted.
        _, _, _, _, fast = _world(fig9_graph, affinity=False, fast_lane=True)
        _, _, _, _, scalar = _world(fig9_graph, affinity=False, fast_lane=False)
        alloc = _alloc({"A": 6.0}, {"A": {"A": 5.0, "B": 3.0}})
        fast.install(alloc)
        scalar.install(alloc)
        picks = [
            (fast._pick_server("A", "C1"), scalar._pick_server("A", "C1"))
            for _ in range(20)  # runs well past budget exhaustion -> spill
        ]
        assert [a for a, _ in picks] == [b for _, b in picks]


class TestCoalescedReinjection:
    def _queue_then_fund(self, fig9_graph, fast_lane, n=6):
        sim, _, _, _, switch = _world(
            fig9_graph, fast_lane=fast_lane, spread_reinjection=False
        )
        switch.install(_alloc({"A": 0.0}, {"A": {"A": 32.0}}))
        for i in range(n):
            switch.handle(Request(principal="A", client_id=f"c{i}", created_at=0.0))
        assert switch.queue_lengths()["A"] == n
        switch.install(_alloc({"A": float(n)}, {"A": {"A": 32.0}}))
        return sim, switch

    def test_fast_lane_drains_batch_through_one_event(self, fig9_graph):
        sim, switch = self._queue_then_fund(fig9_graph, fast_lane=True)
        assert sim.pending == 1  # one pump event for the whole batch
        sim.run(until=1.0)
        assert switch.reinjected["A"] == 6
        assert switch.admitted["A"] == 6

    def test_scalar_lane_schedules_one_event_per_syn(self, fig9_graph):
        sim, switch = self._queue_then_fund(fig9_graph, fast_lane=False)
        assert sim.pending == 6
        sim.run(until=1.0)
        assert switch.reinjected["A"] == 6
        assert switch.admitted["A"] == 6


class TestPortSpace:
    VIP = ("10.0.0.1", 80)

    def test_exhaustion_raises_typed_error(self, fig9_graph):
        # Regression: the old fixed-probe search failed with an untyped
        # RuntimeError long before the range was actually full.  Now the
        # cursor wraps the whole span and only then raises.
        from repro.l4.switch import _PORT_LO, _PORT_SPAN

        _, _, _, _, switch = _world(fig9_graph)
        switch._pending_tuples.update(
            ("C1", _PORT_LO + off, *self.VIP) for off in range(_PORT_SPAN)
        )
        with pytest.raises(PortSpaceExhausted):
            switch._claim_tuple("C1")
        # Another client's port space is untouched.
        assert switch._claim_tuple("C2")[0] == "C2"
        # Freeing one tuple makes the claim succeed again.
        freed = ("C1", _PORT_LO + 7, *self.VIP)
        switch._pending_tuples.discard(freed)
        assert switch._claim_tuple("C1") == freed

    def test_free_list_reuses_released_port(self, fig9_graph):
        _, _, _, _, switch = _world(fig9_graph)
        tup = switch._claim_tuple("C1")
        switch._pending_tuples.add(tup)   # tuple goes live
        switch._pending_tuples.discard(tup)
        switch._release_port(tup[0], tup[1])
        # LIFO free list: the released port comes straight back.
        assert switch._claim_tuple("C1") == tup

    def test_stray_double_release_is_harmless(self, fig9_graph):
        # A port released while its tuple is still live must not be
        # handed out: every free-list candidate is re-checked against
        # NAT/conntrack/pending state.
        _, _, _, _, switch = _world(fig9_graph)
        tup = switch._claim_tuple("C1")
        switch.nat.install(tup, "SA", 80, now=0.0)   # tuple is live
        switch._release_port(tup[0], tup[1])         # stray release
        assert switch._claim_tuple("C1") != tup
