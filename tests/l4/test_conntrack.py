import pytest

from repro.l4.conntrack import ArenaConnTracker, ConnTracker

TUP = ("C1", 12345, "10.0.0.1", 80)


class TestConnectionLifecycle:
    def test_open_lookup_close(self):
        ct = ConnTracker()
        conn = ct.open(TUP, server="srv-1", principal="A", now=0.0)
        assert ct.lookup(TUP) is conn
        ct.close(TUP)
        assert ct.lookup(TUP) is None
        assert conn.closed

    def test_touch_updates(self):
        ct = ConnTracker()
        ct.open(TUP, "srv-1", "A", now=0.0)
        conn = ct.touch(TUP, now=5.0)
        assert conn.last_seen == 5.0
        assert conn.packets == 2

    def test_touch_unknown(self):
        assert ConnTracker().touch(TUP, now=0.0) is None

    def test_expire_idle(self):
        ct = ConnTracker(idle_timeout=10.0)
        ct.open(TUP, "srv-1", "A", now=0.0)
        other = ("C2", 999, "10.0.0.1", 80)
        ct.open(other, "srv-1", "A", now=0.0)
        ct.touch(other, now=25.0)
        assert ct.expire(now=30.0) == 1
        assert ct.lookup(TUP) is None
        assert ct.lookup(other) is not None
        assert ct.expired == 1

    def test_len(self):
        ct = ConnTracker()
        ct.open(TUP, "srv-1", "A", now=0.0)
        assert len(ct) == 1

    def test_bad_timeout(self):
        with pytest.raises(ValueError):
            ConnTracker(idle_timeout=0.0)


class TestAffinity:
    def test_remembers_last_server(self):
        ct = ConnTracker()
        ct.open(TUP, "srv-1", "A", now=0.0)
        assert ct.preferred_server("C1", "A") == "srv-1"

    def test_affinity_is_per_principal(self):
        ct = ConnTracker()
        ct.open(TUP, "srv-1", "A", now=0.0)
        assert ct.preferred_server("C1", "B") is None

    def test_affinity_updates_on_new_connection(self):
        ct = ConnTracker()
        ct.open(TUP, "srv-1", "A", now=0.0)
        ct.open(("C1", 22222, "10.0.0.1", 80), "srv-2", "A", now=1.0)
        assert ct.preferred_server("C1", "A") == "srv-2"

    def test_affinity_survives_connection_close(self):
        # SSL-session-style affinity persists beyond individual connections.
        ct = ConnTracker()
        ct.open(TUP, "srv-1", "A", now=0.0)
        ct.close(TUP)
        assert ct.preferred_server("C1", "A") == "srv-1"

    def test_forget_affinity(self):
        ct = ConnTracker()
        ct.open(TUP, "srv-1", "A", now=0.0)
        ct.forget_affinity("C1", "A")
        assert ct.preferred_server("C1", "A") is None


@pytest.fixture(params=[ConnTracker, ArenaConnTracker],
                ids=["scalar", "arena"])
def tracker_cls(request):
    return request.param


class TestTrackerApiParity:
    """The arena tracker is a drop-in for the scalar one: every shared
    API call must behave identically on both implementations."""

    def test_open_lookup_close(self, tracker_cls):
        ct = tracker_cls()
        ct.open(TUP, server="srv-1", principal="A", now=0.0)
        conn = ct.lookup(TUP)
        assert (conn.server, conn.principal) == ("srv-1", "A")
        assert TUP in ct and len(ct) == 1
        assert ct.close(TUP)
        assert ct.lookup(TUP) is None
        assert TUP not in ct and len(ct) == 0

    def test_close_unknown_is_falsy(self, tracker_cls):
        assert not tracker_cls().close(TUP)

    def test_touch_updates(self, tracker_cls):
        ct = tracker_cls()
        ct.open(TUP, "srv-1", "A", now=0.0)
        conn = ct.touch(TUP, now=5.0)
        assert conn.last_seen == 5.0
        assert conn.packets == 2
        assert ct.touch(("C9", 1, "x", 2), now=5.0) is None

    def test_expiry_and_affinity(self, tracker_cls):
        ct = tracker_cls(idle_timeout=10.0)
        ct.open(TUP, "srv-1", "A", now=0.0)
        other = ("C2", 999, "10.0.0.1", 80)
        ct.open(other, "srv-2", "A", now=0.0)
        ct.touch(other, now=25.0)
        assert ct.expire_stale(now=30.0) == [TUP]
        assert ct.expired == 1
        assert ct.lookup(other) is not None
        assert ct.preferred_server("C2", "A") == "srv-2"
        ct.forget_affinity("C2", "A")
        assert ct.preferred_server("C2", "A") is None

    def test_bad_timeout(self, tracker_cls):
        with pytest.raises(ValueError):
            tracker_cls(idle_timeout=0.0)


class TestArenaRing:
    """Arena-specific structure: slot recycling and the expiry ring."""

    def test_slot_reuse_after_close(self):
        ct = ArenaConnTracker()
        s0 = ct.open_slot(TUP, "srv-1", "A", now=0.0)
        ct.close(TUP)
        other = ("C2", 999, "10.0.0.1", 80)
        assert ct.open_slot(other, "srv-2", "A", now=1.0) == s0
        assert ct.server_of(other) == "srv-2"

    def test_ring_orders_by_last_seen(self):
        ct = ArenaConnTracker()
        tups = [("C1", 1000 + i, "10.0.0.1", 80) for i in range(4)]
        for i, t in enumerate(tups):
            ct.open(t, "srv-1", "A", now=float(i))
        # Touching the oldest moves it behind every untouched flow.
        ct.touch(tups[0], now=10.0)
        assert list(ct._conns) == [tups[1], tups[2], tups[3], tups[0]]

    def test_expire_walks_only_the_stale_prefix(self):
        # The ring is last-seen ordered, so the sweep must stop at the
        # first fresh entry instead of scanning every live flow.
        ct = ArenaConnTracker(idle_timeout=10.0)
        tups = [("C1", 1000 + i, "10.0.0.1", 80) for i in range(5)]
        for i, t in enumerate(tups):
            ct.open(t, "srv-1", "A", now=float(i))
        ct.touch(tups[0], now=50.0)   # resurrect the oldest
        stale = ct.expire_stale(now=52.0)
        assert stale == [tups[1], tups[2], tups[3], tups[4]]
        assert list(ct._conns) == [tups[0]]
        assert len(ct) == 1

    def test_expired_slots_are_recycled(self):
        ct = ArenaConnTracker(idle_timeout=1.0)
        ct.open(TUP, "srv-1", "A", now=0.0)
        ct.expire_stale(now=5.0)
        other = ("C2", 999, "10.0.0.1", 80)
        ct.open(other, "srv-2", "A", now=6.0)
        # Arena did not grow: the expired slot was reused.
        assert len(ct._tuples) == 1

    def test_interleaved_churn_keeps_index_consistent(self):
        ct = ArenaConnTracker(idle_timeout=30.0)
        live = {}
        for i in range(500):
            tup = ("C1", 10_000 + i, "10.0.0.1", 80)
            ct.open(tup, f"srv-{i % 3}", "A", now=float(i))
            live[tup] = f"srv-{i % 3}"
            if i % 3 == 0:
                victim = ("C1", 10_000 + i // 2, "10.0.0.1", 80)
                if victim in live:
                    ct.close(victim)
                    del live[victim]
        assert len(ct) == len(live)
        for tup, server in live.items():
            assert ct.server_of(tup) == server
        stale = ct.expire_stale(now=600.0)
        assert sorted(stale) == sorted(live)
        assert len(ct) == 0
