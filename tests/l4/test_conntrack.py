import pytest

from repro.l4.conntrack import ConnTracker

TUP = ("C1", 12345, "10.0.0.1", 80)


class TestConnectionLifecycle:
    def test_open_lookup_close(self):
        ct = ConnTracker()
        conn = ct.open(TUP, server="srv-1", principal="A", now=0.0)
        assert ct.lookup(TUP) is conn
        ct.close(TUP)
        assert ct.lookup(TUP) is None
        assert conn.closed

    def test_touch_updates(self):
        ct = ConnTracker()
        ct.open(TUP, "srv-1", "A", now=0.0)
        conn = ct.touch(TUP, now=5.0)
        assert conn.last_seen == 5.0
        assert conn.packets == 2

    def test_touch_unknown(self):
        assert ConnTracker().touch(TUP, now=0.0) is None

    def test_expire_idle(self):
        ct = ConnTracker(idle_timeout=10.0)
        ct.open(TUP, "srv-1", "A", now=0.0)
        other = ("C2", 999, "10.0.0.1", 80)
        ct.open(other, "srv-1", "A", now=0.0)
        ct.touch(other, now=25.0)
        assert ct.expire(now=30.0) == 1
        assert ct.lookup(TUP) is None
        assert ct.lookup(other) is not None
        assert ct.expired == 1

    def test_len(self):
        ct = ConnTracker()
        ct.open(TUP, "srv-1", "A", now=0.0)
        assert len(ct) == 1

    def test_bad_timeout(self):
        with pytest.raises(ValueError):
            ConnTracker(idle_timeout=0.0)


class TestAffinity:
    def test_remembers_last_server(self):
        ct = ConnTracker()
        ct.open(TUP, "srv-1", "A", now=0.0)
        assert ct.preferred_server("C1", "A") == "srv-1"

    def test_affinity_is_per_principal(self):
        ct = ConnTracker()
        ct.open(TUP, "srv-1", "A", now=0.0)
        assert ct.preferred_server("C1", "B") is None

    def test_affinity_updates_on_new_connection(self):
        ct = ConnTracker()
        ct.open(TUP, "srv-1", "A", now=0.0)
        ct.open(("C1", 22222, "10.0.0.1", 80), "srv-2", "A", now=1.0)
        assert ct.preferred_server("C1", "A") == "srv-2"

    def test_affinity_survives_connection_close(self):
        # SSL-session-style affinity persists beyond individual connections.
        ct = ConnTracker()
        ct.open(TUP, "srv-1", "A", now=0.0)
        ct.close(TUP)
        assert ct.preferred_server("C1", "A") == "srv-1"

    def test_forget_affinity(self):
        ct = ConnTracker()
        ct.open(TUP, "srv-1", "A", now=0.0)
        ct.forget_affinity("C1", "A")
        assert ct.preferred_server("C1", "A") is None
