import pytest

from repro.cluster.request import Request
from repro.l4.packets import FlowRecord, TcpFlags, TcpPacket


def _syn():
    req = Request(principal="A", client_id="C1", created_at=0.0)
    return TcpPacket(
        src_ip="C1", src_port=12345, dst_ip="10.0.0.1", dst_port=80,
        flags=TcpFlags.SYN, request=req,
    )


class TestTcpPacket:
    def test_is_syn(self):
        assert _syn().is_syn

    def test_syn_ack_is_not_connection_request(self):
        p = TcpPacket("s", 80, "c", 1000, flags=TcpFlags.SYN | TcpFlags.ACK)
        assert not p.is_syn

    def test_four_tuple_and_reverse(self):
        p = _syn()
        assert p.four_tuple == ("C1", 12345, "10.0.0.1", 80)
        assert p.reverse_tuple == ("10.0.0.1", 80, "C1", 12345)

    def test_rewritten_destination(self):
        p = _syn().rewritten("server-1", 8080)
        assert p.dst_ip == "server-1"
        assert p.dst_port == 8080
        assert p.src_ip == "C1"          # untouched
        assert p.request is not None     # payload rides along

    def test_rewritten_source(self):
        p = TcpPacket("server-1", 8080, "C1", 12345, flags=TcpFlags.ACK)
        out = p.rewritten_source("10.0.0.1", 80)
        assert out.src_ip == "10.0.0.1"
        assert out.src_port == 80

    def test_invalid_ports(self):
        with pytest.raises(ValueError):
            TcpPacket("a", 0, "b", 80)
        with pytest.raises(ValueError):
            TcpPacket("a", 80, "b", 65536)

    def test_negative_payload(self):
        with pytest.raises(ValueError):
            TcpPacket("a", 1, "b", 2, payload_bytes=-1)

    def test_unique_packet_ids(self):
        assert _syn().packet_id != _syn().packet_id

    def test_flags_composable(self):
        f = TcpFlags.SYN | TcpFlags.ACK
        assert f & TcpFlags.SYN
        assert not (f & TcpFlags.FIN)


class _SwitchSpy:
    def __init__(self):
        self.responses = []

    def _on_response_flow(self, flow, request):
        self.responses.append((flow, request))


class TestFlowRecord:
    """The fast lane's whole-flow record: one slotted object instead of a
    SYN + payload + response packet chain."""

    TUP = ("C1", 12345, "10.0.0.1", 80)

    def _flow(self, switch=None):
        req = Request(principal="A", client_id="C1", created_at=0.0,
                      size_bytes=4096)
        return req, FlowRecord(switch or _SwitchSpy(), req, None, self.TUP)

    def test_mirrors_packet_accessors(self):
        req, flow = self._flow()
        assert flow.principal == "A"
        assert flow.src_ip == "C1"
        assert flow.src_port == 12345
        assert flow.four_tuple == self.TUP
        assert flow.payload_bytes == req.size_bytes

    def test_unassigned_until_admitted(self):
        _, flow = self._flow()
        assert flow.server is None
        assert flow.response_bytes == 0

    def test_record_is_the_completion_callback(self):
        # The server calls ``done(request)``; the record *is* ``done`` —
        # no per-admission closure is allocated on the fast lane.
        spy = _SwitchSpy()
        req, flow = self._flow(spy)
        flow(req)
        assert spy.responses == [(flow, req)]

    def test_no_instance_dict(self):
        _, flow = self._flow()
        with pytest.raises(AttributeError):
            flow.arbitrary_attribute = 1
