import pytest
from hypothesis import given, settings, strategies as st

from repro.l4.nat import ArenaNatTable, NatTable
from repro.l4.packets import TcpFlags, TcpPacket

CLIENT = ("C1", 12345, "10.0.0.1", 80)


class TestNatTable:
    def test_install_and_translate_in(self):
        nat = NatTable()
        nat.install(CLIENT, "srv-1", 8080, now=0.0)
        pkt = TcpPacket(*CLIENT, flags=TcpFlags.SYN)
        out = nat.translate_in(pkt)
        assert out is not None
        assert (out.dst_ip, out.dst_port) == ("srv-1", 8080)
        assert nat.rewrites_in == 1

    def test_translate_out_restores_virtual_address(self):
        nat = NatTable()
        nat.install(CLIENT, "srv-1", 8080, now=0.0)
        resp = TcpPacket("srv-1", 8080, "C1", 12345, flags=TcpFlags.ACK)
        out = nat.translate_out(resp)
        assert out is not None
        assert (out.src_ip, out.src_port) == ("10.0.0.1", 80)
        assert nat.rewrites_out == 1

    def test_unknown_flow_returns_none(self):
        nat = NatTable()
        assert nat.translate_in(TcpPacket(*CLIENT)) is None
        assert nat.translate_out(TcpPacket("x", 1, "y", 2)) is None

    def test_duplicate_install_rejected(self):
        nat = NatTable()
        nat.install(CLIENT, "srv-1", 8080, now=0.0)
        with pytest.raises(ValueError):
            nat.install(CLIENT, "srv-2", 8080, now=1.0)

    def test_remove_clears_both_directions(self):
        nat = NatTable()
        nat.install(CLIENT, "srv-1", 8080, now=0.0)
        nat.remove(CLIENT)
        assert len(nat) == 0
        assert nat.translate_in(TcpPacket(*CLIENT)) is None
        resp = TcpPacket("srv-1", 8080, "C1", 12345)
        assert nat.translate_out(resp) is None

    def test_remove_missing_is_noop(self):
        NatTable().remove(CLIENT)

    def test_port_reuse_after_removal(self):
        nat = NatTable()
        nat.install(CLIENT, "srv-1", 8080, now=0.0)
        nat.remove(CLIENT)
        nat.install(CLIENT, "srv-2", 9090, now=1.0)
        out = nat.translate_in(TcpPacket(*CLIENT))
        assert (out.dst_ip, out.dst_port) == ("srv-2", 9090)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["C1", "C2", "C3"]),
                st.integers(min_value=1024, max_value=2048),
                st.sampled_from(["srv-1", "srv-2"]),
            ),
            max_size=40,
            unique_by=lambda t: (t[0], t[1]),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_identity_property(self, flows):
        """in-translate then out-translate always restores the virtual
        endpoint for every installed flow."""
        nat = NatTable()
        for client_ip, port, server in flows:
            tup = (client_ip, port, "10.0.0.1", 80)
            nat.install(tup, server, 8080, now=0.0)
        for client_ip, port, server in flows:
            fwd = nat.translate_in(
                TcpPacket(client_ip, port, "10.0.0.1", 80, flags=TcpFlags.SYN)
            )
            assert (fwd.dst_ip, fwd.dst_port) == (server, 8080)
            back = nat.translate_out(
                TcpPacket(server, 8080, client_ip, port, flags=TcpFlags.ACK)
            )
            assert (back.src_ip, back.src_port) == ("10.0.0.1", 80)


class TestArenaNatTable:
    """Slotted fast-lane table: scalar-compatible API plus slot recycling."""

    def test_install_translate_remove(self):
        nat = ArenaNatTable()
        nat.install(CLIENT, "srv-1", 8080, now=0.0)
        out = nat.translate_in(TcpPacket(*CLIENT, flags=TcpFlags.SYN))
        assert (out.dst_ip, out.dst_port) == ("srv-1", 8080)
        resp = TcpPacket("srv-1", 8080, "C1", 12345, flags=TcpFlags.ACK)
        back = nat.translate_out(resp)
        assert (back.src_ip, back.src_port) == ("10.0.0.1", 80)
        assert nat.remove(CLIENT)
        assert len(nat) == 0
        assert nat.translate_in(TcpPacket(*CLIENT)) is None
        assert not nat.remove(CLIENT)

    def test_duplicate_install_rejected(self):
        nat = ArenaNatTable()
        nat.install_slot(CLIENT, "srv-1", 8080, now=0.0)
        with pytest.raises(ValueError):
            nat.install_slot(CLIENT, "srv-2", 8080, now=1.0)

    def test_slot_reuse_after_remove(self):
        nat = ArenaNatTable()
        s0 = nat.install_slot(CLIENT, "srv-1", 8080, now=0.0)
        nat.remove(CLIENT)
        other = ("C2", 999, "10.0.0.1", 80)
        assert nat.install_slot(other, "srv-2", 9090, now=1.0) == s0
        out = nat.translate_in(TcpPacket(*other))
        assert (out.dst_ip, out.dst_port) == ("srv-2", 9090)

    def test_lookup_view_matches_scalar_entry(self):
        scalar, arena = NatTable(), ArenaNatTable()
        e1 = scalar.install(CLIENT, "srv-1", 8080, now=3.0)
        arena.install(CLIENT, "srv-1", 8080, now=3.0)
        assert arena.lookup(CLIENT) == e1
        assert scalar.lookup(CLIENT) == arena.lookup(CLIENT)

    def test_scalar_vs_arena_parity_10k_flows(self):
        """Satellite acceptance: after 10k mixed install/remove/translate
        operations driven by one deterministic schedule, the slotted table
        and the dict table hold identical mappings and counters."""
        scalar, arena = NatTable(), ArenaNatTable()
        live = []
        removed = 0
        for i in range(10_000):
            client = f"C{i % 7}"
            port = 10_000 + i
            tup = (client, port, "10.0.0.1", 80)
            server = f"srv-{i % 3}"
            for nat in (scalar, arena):
                nat.install(tup, server, 8080, now=i * 1e-3)
            live.append(tup)
            if i % 3 == 0:
                victim = live.pop(removed % len(live))
                removed += 1
                assert bool(scalar.remove(victim)) == bool(arena.remove(victim))
            if i % 5 == 0:
                pkt = TcpPacket(*tup, flags=TcpFlags.ACK, payload_bytes=64)
                a, b = scalar.translate_in(pkt), arena.translate_in(pkt)
                assert (a is None) == (b is None)
                if a is not None:
                    assert (a.dst_ip, a.dst_port) == (b.dst_ip, b.dst_port)
        assert len(scalar) == len(arena) == len(live)
        assert scalar.rewrites_in == arena.rewrites_in
        assert scalar.rewrites_out == arena.rewrites_out
        for tup in live:
            a, b = scalar.lookup(tup), arena.lookup(tup)
            assert a == b
            resp = TcpPacket(a.server[0], a.server[1], tup[0], tup[1],
                             flags=TcpFlags.ACK)
            sa, ar = scalar.translate_out(resp), arena.translate_out(resp)
            assert (sa.src_ip, sa.src_port) == (ar.src_ip, ar.src_port)
