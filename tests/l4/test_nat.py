import pytest
from hypothesis import given, settings, strategies as st

from repro.l4.nat import NatTable
from repro.l4.packets import TcpFlags, TcpPacket

CLIENT = ("C1", 12345, "10.0.0.1", 80)


class TestNatTable:
    def test_install_and_translate_in(self):
        nat = NatTable()
        nat.install(CLIENT, "srv-1", 8080, now=0.0)
        pkt = TcpPacket(*CLIENT, flags=TcpFlags.SYN)
        out = nat.translate_in(pkt)
        assert out is not None
        assert (out.dst_ip, out.dst_port) == ("srv-1", 8080)
        assert nat.rewrites_in == 1

    def test_translate_out_restores_virtual_address(self):
        nat = NatTable()
        nat.install(CLIENT, "srv-1", 8080, now=0.0)
        resp = TcpPacket("srv-1", 8080, "C1", 12345, flags=TcpFlags.ACK)
        out = nat.translate_out(resp)
        assert out is not None
        assert (out.src_ip, out.src_port) == ("10.0.0.1", 80)
        assert nat.rewrites_out == 1

    def test_unknown_flow_returns_none(self):
        nat = NatTable()
        assert nat.translate_in(TcpPacket(*CLIENT)) is None
        assert nat.translate_out(TcpPacket("x", 1, "y", 2)) is None

    def test_duplicate_install_rejected(self):
        nat = NatTable()
        nat.install(CLIENT, "srv-1", 8080, now=0.0)
        with pytest.raises(ValueError):
            nat.install(CLIENT, "srv-2", 8080, now=1.0)

    def test_remove_clears_both_directions(self):
        nat = NatTable()
        nat.install(CLIENT, "srv-1", 8080, now=0.0)
        nat.remove(CLIENT)
        assert len(nat) == 0
        assert nat.translate_in(TcpPacket(*CLIENT)) is None
        resp = TcpPacket("srv-1", 8080, "C1", 12345)
        assert nat.translate_out(resp) is None

    def test_remove_missing_is_noop(self):
        NatTable().remove(CLIENT)

    def test_port_reuse_after_removal(self):
        nat = NatTable()
        nat.install(CLIENT, "srv-1", 8080, now=0.0)
        nat.remove(CLIENT)
        nat.install(CLIENT, "srv-2", 9090, now=1.0)
        out = nat.translate_in(TcpPacket(*CLIENT))
        assert (out.dst_ip, out.dst_port) == ("srv-2", 9090)

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["C1", "C2", "C3"]),
                st.integers(min_value=1024, max_value=2048),
                st.sampled_from(["srv-1", "srv-2"]),
            ),
            max_size=40,
            unique_by=lambda t: (t[0], t[1]),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_identity_property(self, flows):
        """in-translate then out-translate always restores the virtual
        endpoint for every installed flow."""
        nat = NatTable()
        for client_ip, port, server in flows:
            tup = (client_ip, port, "10.0.0.1", 80)
            nat.install(tup, server, 8080, now=0.0)
        for client_ip, port, server in flows:
            fwd = nat.translate_in(
                TcpPacket(client_ip, port, "10.0.0.1", 80, flags=TcpFlags.SYN)
            )
            assert (fwd.dst_ip, fwd.dst_port) == (server, 8080)
            back = nat.translate_out(
                TcpPacket(server, 8080, client_ip, port, flags=TcpFlags.ACK)
            )
            assert (back.src_ip, back.src_port) == ("10.0.0.1", 80)
