"""Multiple resource types: the vector extension of §3.1.1.

A server has both CPU and network capacity.  A CPU-bound principal and a
network-bound principal share it half/half.  The vector LP co-schedules
their complementary profiles at nearly twice the rate either bottleneck
alone would allow, while per-type guarantees hold.

Run:  python examples/multi_resource.py
"""

from repro.core.agreements import Agreement, AgreementGraph
from repro.core.multiresource import compute_multiresource_access
from repro.scheduling import WindowConfig
from repro.scheduling.multiresource import MultiResourceCommunityScheduler

RES = ("cpu", "net")


def main() -> None:
    g = AgreementGraph()
    g.add_principal("S")
    g.add_principal("render-farm")   # CPU-heavy requests
    g.add_principal("cdn-edge")      # network-heavy requests
    g.add_agreement(Agreement("S", "render-farm", 0.5, 1.0))
    g.add_agreement(Agreement("S", "cdn-edge", 0.5, 1.0))

    access = compute_multiresource_access(
        g, {"S": {"cpu": 1000.0, "net": 1000.0}}, RES
    )
    print("per-type access levels (units/s):")
    for p in ("render-farm", "cdn-edge"):
        for r in RES:
            print(f"  {p:12s} {r}: mandatory {access.mandatory(p, r):6.1f} "
                  f"optional {access.optional(p, r):6.1f}")

    profiles = {
        "render-farm": {"cpu": 2.0, "net": 0.1},
        "cdn-edge": {"cpu": 0.1, "net": 2.0},
    }
    sched = MultiResourceCommunityScheduler(access, profiles, WindowConfig(0.1))

    print("\nrequest-rate guarantees given each profile:")
    for p in profiles:
        print(f"  {p:12s} {sched.guaranteed_requests(p) / 0.1:6.1f} req/s")

    plan = sched.schedule({"render-farm": 1000.0, "cdn-edge": 1000.0})
    a = plan.served("render-farm") / 0.1
    b = plan.served("cdn-edge") / 0.1
    print(f"\nco-scheduled under flood: render-farm {a:.0f} req/s, "
          f"cdn-edge {b:.0f} req/s (joint {a + b:.0f})")
    print("either principal alone would cap at ~500 req/s on its bottleneck "
          "type;\ncomplementary profiles let the vector LP pack both.")
    for r in RES:
        load = plan.load("S", r, profiles)
        print(f"  server {r} load: {load / 0.1:6.1f} of 1000 units/s")


if __name__ == "__main__":
    main()
