"""Long-lived requests via server-side resource containers.

The paper's architecture handles short requests; for continuous media
streams it prescribes "a sandbox or a resource container environment" on
the server (§2, citing Cluster Reserves in §6).  This example runs the
:class:`repro.cluster.containers.ContainerServer`: principal B opens
long-lived streams inside its container while A's short-request guarantee
stays untouched.

Run:  python examples/long_lived_streams.py
"""

from repro.cluster.containers import ContainerServer
from repro.cluster.request import Request
from repro.sim.engine import Simulator


def main() -> None:
    sim = Simulator()
    server = ContainerServer(
        sim, "media-server", capacity=320.0,
        shares={"A": 0.5, "B": 0.5}, borrow_limit=1.2,
    )

    # B starts two media streams at t=5 for 20 s.
    def start_streams():
        s1 = server.open_stream("B", rate=100.0, duration=20.0)
        s2 = server.open_stream("B", rate=60.0, duration=20.0)
        print(f"t={sim.now:4.1f}  B opened streams: "
              f"{[h.rate for h in (s1, s2) if h]} units/s "
              f"(container usage {server.container_usage('B')[0]:.0f}"
              f"/{server.container_usage('B')[1]:.0f})")
        denied = server.open_stream("B", rate=60.0, duration=20.0)
        print(f"t={sim.now:4.1f}  a third 60 units/s stream is "
              f"{'admitted' if denied else 'rejected (container full)'}")

    sim.schedule(5.0, start_streams)

    def offer(principal):
        while sim.now < 40.0:
            server.submit(Request(principal=principal, client_id="c",
                                  created_at=sim.now))
            yield 1.0 / 400.0

    sim.process(offer("A"))
    sim.process(offer("B"))

    last = {"t": 0.0, "A": 0, "B": 0}

    def snapshot():
        dt = sim.now - last["t"]
        a, b = server.served("A"), server.served("B")
        print(f"t={sim.now:4.1f}  interval rates: "
              f"A {(a - last['A']) / dt:6.1f} req/s  "
              f"B {(b - last['B']) / dt:6.1f} req/s  "
              f"reserved {server.reserved_rate:5.1f} units/s  "
              f"streams {len(server.active_streams)}")
        last.update(t=sim.now, A=a, B=b)

    for t in (4.0, 10.0, 20.0, 30.0, 39.0):
        sim.schedule_at(t, snapshot)

    sim.run(until=40.0)
    print("\nB's streams consumed B's own container: A's short-request "
          "service held at ~160 req/s throughout (its 50% guarantee).")


if __name__ == "__main__":
    main()
