"""Hierarchical SLAs: an ASP reselling through sub-ASPs (paper §2.1).

Builds a three-level reselling tree, prints every end customer's effective
entitlement resolved through the chain, then runs a contended scheduling
window to show the guarantees being honoured — including transitive reuse
of an idle customer's reservation.

Run:  python examples/hierarchical_slas.py
"""

from repro.core.access import compute_access_levels
from repro.core.hierarchy import (
    Tier,
    build_hierarchy,
    effective_entitlements,
    oversell_report,
)
from repro.scheduling import CommunityScheduler, WindowConfig


def main() -> None:
    # An ASP with 1000 req/s of hosting capacity resells through two
    # sub-ASPs; each sub-ASP signs SLAs with its own customers.
    asp = Tier("asp", capacity=1000.0)
    horizon = asp.child("horizon-hosting", lb=0.4, ub=0.6)
    nimbus = asp.child("nimbus-apps", lb=0.3, ub=0.5)
    horizon.child("shop.example", lb=0.8, ub=1.0)
    horizon.child("news.example", lb=0.2, ub=0.6)
    nimbus.child("games.example", lb=0.6, ub=1.0)
    nimbus.child("mail.example", lb=0.2, ub=0.5)

    print("effective end-customer entitlements (req/s):")
    for name, (mand, opt) in sorted(effective_entitlements(asp).items()):
        print(f"  {name:15s} mandatory {mand:6.1f}  best-effort +{opt:6.1f}")

    print("\nreseller oversell report (fraction of currency sold):")
    for name, (g, b) in oversell_report(asp).items():
        note = "oversells best-effort" if b > 1.0 else "fully backed"
        print(f"  {name:15s} guaranteed {g:.2f}, best-effort {b:.2f}  ({note})")

    graph = build_hierarchy(asp)
    scheduler = CommunityScheduler(compute_access_levels(graph), WindowConfig(1.0))

    print("\nscheduling one contended second (every customer floods):")
    demand = {
        "shop.example": 600.0,
        "news.example": 600.0,
        "games.example": 600.0,
        "mail.example": 600.0,
    }
    plan = scheduler.schedule(demand)
    for name in sorted(demand):
        print(f"  {name:15s} served {plan.served(name):6.1f} req/s")
    print("  (shop.example's 320 req/s guarantee binds; the surplus is "
        "split max-min)")

    print("\nsame, but games.example is idle (its reservation is reusable):")
    demand["games.example"] = 0.0
    plan = scheduler.schedule(demand)
    for name in sorted(demand):
        print(f"  {name:15s} served {plan.served(name):6.1f} req/s")


if __name__ == "__main__":
    main()
