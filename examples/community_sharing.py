"""Community sharing through the Layer-4 switch (the paper's Fig 9).

Two organisations each own a 320 req/s server; B shares half of its
server with A ([0.5, 0.5]).  Client machines come and go in four phases;
the L4 switch (NAT redirection, kernel SYN queues, user-space LP daemon)
enforces the aggregate agreement throughout.

Run:  python examples/community_sharing.py
"""

from repro.core.agreements import Agreement, AgreementGraph
from repro.experiments.harness import Scenario


def main() -> None:
    T = 40.0  # seconds per phase (paper: 100)

    g = AgreementGraph()
    g.add_principal("A", capacity=320.0)
    g.add_principal("B", capacity=320.0)
    g.add_agreement(Agreement("B", "A", 0.5, 0.5))

    sc = Scenario(g, seed=1)
    sa = sc.server("SA", "A", 320.0)
    sb = sc.server("SB", "B", 320.0)
    switch = sc.l4("SW", {"A": sa, "B": sb})

    # Phases: A runs 2 clients, then 0, then 1, then 0; B always 1.
    sc.client("C1", "A", switch, rate=400.0, windows=[(0, T), (2 * T, 3 * T)])
    sc.client("C2", "A", switch, rate=400.0, windows=[(0, T)])
    sc.client("C3", "B", switch, rate=400.0, windows=[(0, 4 * T)])

    print(f"simulating {4 * T:.0f} s ...")
    sc.run(4 * T)

    phases = [(f"phase{i + 1}", i * T, (i + 1) * T) for i in range(4)]
    print(f"\n{'phase':>8} | {'A req/s':>8} | {'B req/s':>8} | paper")
    expected = ["(480, 160)", "(0, 320)", "(~400, 240)", "(0, 320)"]
    for (name, t0, t1), exp in zip(phases, expected):
        a = sc.meter.mean_rate("A", t0 + 5, t1)
        b = sc.meter.mean_rate("B", t0 + 5, t1)
        print(f"{name:>8} | {a:8.1f} | {b:8.1f} | {exp}")

    print(f"\nswitch stats: admitted={switch.admitted} "
          f"reinjected={switch.reinjected} affinity_hits={switch.affinity_hits}")


if __name__ == "__main__":
    main()
