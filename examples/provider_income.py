"""Service-provider income maximisation (the paper's Fig 10).

A provider runs two 320 req/s servers.  Customer A holds [0.8, 1] and pays
2 units per extra request; customer B holds [0.2, 1] and pays 1.  The L4
switch admits the highest payer first while honouring B's mandatory floor.

Run:  python examples/provider_income.py
"""

from repro.core.agreements import Agreement, AgreementGraph
from repro.experiments.harness import Scenario


def main() -> None:
    T = 40.0

    g = AgreementGraph()
    g.add_principal("P", capacity=640.0)
    g.add_principal("A")
    g.add_principal("B")
    g.add_agreement(Agreement("P", "A", 0.8, 1.0))
    g.add_agreement(Agreement("P", "B", 0.2, 1.0))

    sc = Scenario(g, seed=2)
    s1 = sc.server("S1", "P", 320.0)
    s2 = sc.server("S2", "P", 320.0)
    switch = sc.l4(
        "SW", {"P": [s1, s2]}, mode="provider", prices={"A": 2.0, "B": 1.0}
    )

    sc.client("C1", "A", switch, rate=400.0, windows=[(0, T), (2 * T, 3 * T)])
    sc.client("C2", "A", switch, rate=400.0, windows=[(0, T)])
    sc.client("C3", "B", switch, rate=400.0, windows=[(0, 4 * T)])

    print(f"simulating {4 * T:.0f} s ...")
    sc.run(4 * T)

    phases = [(f"phase{i + 1}", i * T, (i + 1) * T) for i in range(4)]
    expected = ["(512, 128)", "(0, 400)", "(400, 240)", "(0, 400)"]
    print(f"\n{'phase':>8} | {'A req/s':>8} | {'B req/s':>8} | paper")
    for (name, t0, t1), exp in zip(phases, expected):
        a = sc.meter.mean_rate("A", t0 + 5, t1)
        b = sc.meter.mean_rate("B", t0 + 5, t1)
        print(f"{name:>8} | {a:8.1f} | {b:8.1f} | {exp}")

    # Income accounting: every A request beyond its mandatory 512 earns 2,
    # every B request beyond 128 earns 1.
    mc = {"A": 512.0, "B": 128.0}
    prices = {"A": 2.0, "B": 1.0}
    income = 0.0
    for (name, t0, t1) in phases:
        for p in ("A", "B"):
            extra = max(0.0, sc.meter.mean_rate(p, t0 + 5, t1) - mc[p])
            income += prices[p] * extra * (t1 - t0 - 5)
    print(f"\nprovider surplus income over the run: {income:,.0f} price-units")


if __name__ == "__main__":
    main()
