"""Coordination under WAN delay (the paper's Fig 8).

Two L7 redirectors coordinate through a combining tree whose broadcasts
lag by 6 seconds.  The run shows the three delay effects the paper
reports: the conservative half-mandatory start, the competition transient
after a load change, and convergence to the agreed split once information
propagates.

Run:  python examples/wan_delay.py
"""

import numpy as np

from repro.core.agreements import Agreement, AgreementGraph
from repro.experiments.harness import Scenario


def main() -> None:
    lag = 6.0
    T1, T2, T3 = 30.0, 50.0, 30.0

    g = AgreementGraph()
    g.add_principal("S", capacity=320.0)
    g.add_principal("A")
    g.add_principal("B")
    g.add_agreement(Agreement("S", "A", 0.8, 1.0))
    g.add_agreement(Agreement("S", "B", 0.2, 1.0))

    sc = Scenario(g, seed=3)
    server = sc.server("S", "S", 320.0)
    r1 = sc.l7("R1", {"S": server}, n_redirectors=2)
    r2 = sc.l7("R2", {"S": server}, n_redirectors=2)
    sc.connect_tree(link_delay=lag / 2.0, extra_root=True)

    sc.client("C1", "A", r1, rate=135.0, windows=[(T1, T1 + T2)])
    sc.client("C2", "A", r1, rate=135.0, windows=[(T1, T1 + T2)])
    sc.client("C3", "B", r2, rate=135.0, windows=[(0.0, T1 + T2 + T3)])

    total = T1 + T2 + T3
    print(f"simulating {total:.0f} s with {lag:.0f} s information lag ...\n")
    sc.run(total)

    times_a, rates_a = sc.meter.series("A")
    times_b, rates_b = sc.meter.series("B")
    b_of = dict(zip(times_b.astype(int), rates_b))
    a_of = dict(zip(times_a.astype(int), rates_a))
    print(" t(s) | A req/s | B req/s")
    for t in range(0, int(total), 5):
        print(f"{t:5d} | {a_of.get(t, 0.0):7.1f} | {b_of.get(t, 0.0):7.1f}")

    print("\nwhat to look for (paper Fig 8):")
    print(f"  t<{lag:.0f}: B held to ~32 req/s — half its mandatory share,")
    print("         because R2 has no global information yet;")
    print(f"  t {T1:.0f}..{T1 + lag:.0f}: A and B compete on stale information;")
    print(f"  t>{T1 + lag:.0f}: agreed split (A 255, B 65) once broadcasts arrive.")
    print(f"\nfallback windows used: R1={r1.used_fallback_windows}, "
          f"R2={r2.used_fallback_windows}")


if __name__ == "__main__":
    main()
