"""Quickstart: the agreement calculus and one scheduling window.

Builds the paper's Fig 3 agreement graph, values every currency and
ticket, then runs a single community scheduling window on the derived
access levels.

Run:  python examples/quickstart.py
"""

from repro import Agreement, AgreementGraph, compute_access_levels, value_currencies
from repro.core.tickets import TicketKind
from repro.scheduling import CommunityScheduler, WindowConfig


def main() -> None:
    # --- 1. express the agreements (paper Fig 3) -------------------------
    g = AgreementGraph()
    g.add_principal("A", capacity=1000.0)   # 1000 request-units/second
    g.add_principal("B", capacity=1500.0)
    g.add_principal("C", capacity=0.0)      # C owns nothing...
    g.add_agreement(Agreement("A", "B", lb=0.4, ub=0.6))
    g.add_agreement(Agreement("B", "C", lb=0.6, ub=1.0))  # ...but B shares

    # --- 2. value the currencies ------------------------------------------
    val = value_currencies(g)
    print("currency values (mandatory, optional):")
    for name in g.names:
        m, o = val.final(name)
        print(f"  {name}: ({m:.0f}, {o:.0f})")
    print(f"M-Ticket(B->C) real value: "
          f"{val.ticket_value('B', 'C', TicketKind.MANDATORY):.0f}")

    # --- 3. derive access levels and schedule one window -------------------
    access = compute_access_levels(g)
    print("\nper-pair mandatory entitlements MI[holder, owner]:")
    for holder in g.names:
        for owner in g.names:
            mi, oi = access.entitlement(holder, owner)
            if mi > 0 or oi > 0:
                print(f"  {holder} on {owner}'s servers: "
                      f"mandatory {mi:.0f}, optional {oi:.0f} req/s")

    scheduler = CommunityScheduler(access, WindowConfig(0.1))
    # Queue state this window (in requests): C is demanding, A is quiet.
    plan = scheduler.schedule({"A": 10.0, "B": 50.0, "C": 200.0})
    print(f"\nwindow schedule (theta = {plan.theta:.3f}):")
    for name in g.names:
        served = plan.served(name)
        if served > 0:
            print(f"  {name}: {served:.1f} requests -> {plan.assignments(name)}")


if __name__ == "__main__":
    main()
