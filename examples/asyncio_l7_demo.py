"""Real-network Layer-7 redirection on localhost.

Starts an actual asyncio HTTP origin server (capacity-limited to
150 req/s), an L7 redirector enforcing A [0.2,1] / B [0.8,1], and two
rate-limited load generators.  Everything speaks real HTTP/1.1 over real
sockets: admissions are 302s to the origin, rejections are 302s back to
the redirector (the paper's self-redirect).

Run:  python examples/asyncio_l7_demo.py
"""

import asyncio

from repro.core.access import compute_access_levels
from repro.core.agreements import Agreement, AgreementGraph
from repro.l7.asyncio_client import AsyncLoadGenerator
from repro.l7.asyncio_origin import OriginServer
from repro.l7.asyncio_redirector import AsyncRedirector

CAPACITY = 150.0
DURATION = 5.0


async def main() -> None:
    g = AgreementGraph()
    g.add_principal("S", capacity=CAPACITY)
    g.add_principal("A")
    g.add_principal("B")
    g.add_agreement(Agreement("S", "A", 0.2, 1.0))
    g.add_agreement(Agreement("S", "B", 0.8, 1.0))
    access = compute_access_levels(g)

    origin = OriginServer("origin-1", capacity=CAPACITY)
    await origin.start()
    print(f"origin listening on {origin.address}, capacity {CAPACITY:.0f} req/s")

    redirector = AsyncRedirector("R1", access, backends={"S": [origin.address]})
    await redirector.start()
    print(f"redirector listening on {redirector.address}")

    # A floods at 250 req/s; B offers 100 req/s (below its 120 guarantee).
    gen_a = AsyncLoadGenerator("A", redirector.address, rate=250.0, concurrency=64)
    gen_b = AsyncLoadGenerator("B", redirector.address, rate=100.0, concurrency=64)
    print(f"\ndriving load for {DURATION:.0f} s "
          f"(A offers 250 req/s, B offers 100 req/s) ...")
    res_a, res_b = await asyncio.gather(gen_a.run(DURATION), gen_b.run(DURATION))

    print(f"\nA: {res_a['rate']:6.1f} req/s served "
          f"({res_a['completed']} ok, {res_a['errors']} bounced)")
    print(f"B: {res_b['rate']:6.1f} req/s served "
          f"({res_b['completed']} ok, {res_b['errors']} bounced)")
    print(f"\norigin per-principal completions: {origin.completed}")
    print(f"redirector self-redirects: {redirector.self_redirects}")
    print("\nB (under its guarantee) is served in full; A absorbs only the "
          "leftover capacity.")

    await redirector.stop()
    await origin.stop()


if __name__ == "__main__":
    asyncio.run(main())
