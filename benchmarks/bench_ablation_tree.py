"""Ablation — combining tree vs pairwise exchange (§3.2).

The paper: aggregating queue lengths over a combining tree costs 2(n-1)
messages per round versus O(n^2) for neighbour-wise exchange.  This
benchmark measures actual protocol traffic for growing redirector counts
and times a full aggregation round on each overlay shape.
"""

import pytest

from repro.coordination.messages import MessageCounter
from repro.coordination.protocol import build_protocol
from repro.coordination.tree import CombiningTree
from repro.sim.engine import Simulator


def _measure_round_traffic(n: int, kind: str) -> tuple:
    sim = Simulator()
    ids = [f"r{i}" for i in range(n)]
    tree = (
        CombiningTree.star(ids) if kind == "star"
        else CombiningTree.balanced(ids, 2) if kind == "balanced"
        else CombiningTree.chain(ids)
    )
    counter = MessageCounter()
    build_protocol(
        sim, tree, period=0.1,
        suppliers={i: (lambda i=i: {"A": 1.0}) for i in ids},
        link_delay=0.001, counter=counter,
    )
    rounds = 50
    sim.run(until=rounds * 0.1 + 0.05)
    return counter.total / rounds, tree


def _measure_pairwise_traffic(n: int) -> float:
    from repro.coordination.pairwise import build_pairwise

    sim = Simulator()
    ids = [f"r{i}" for i in range(n)]
    counter = MessageCounter()
    build_pairwise(
        sim, ids, period=0.1,
        suppliers={i: (lambda i=i: {"A": 1.0}) for i in ids},
        link_delay=0.001, counter=counter,
    )
    rounds = 50
    sim.run(until=rounds * 0.1 + 0.05)
    return counter.reports / (rounds + 1)


@pytest.mark.parametrize("n", [4, 8, 16, 32])
def test_tree_message_complexity(benchmark, n):
    per_round, tree = benchmark.pedantic(
        lambda: _measure_round_traffic(n, "balanced"), rounds=1, iterations=1
    )
    pairwise = CombiningTree.pairwise_messages_per_round(n)
    print(f"\nn={n}: tree {per_round:.1f} msg/round vs pairwise {pairwise}")
    assert per_round == pytest.approx(2 * (n - 1), rel=0.1)
    assert per_round < pairwise


@pytest.mark.parametrize("n", [4, 8, 16])
def test_tree_vs_pairwise_measured(benchmark, n):
    """Both protocols actually run; the measured traffic ratio matches the
    paper's 2(n-1) vs n(n-1) claim."""
    tree_msgs, pairwise_msgs = benchmark.pedantic(
        lambda: (_measure_round_traffic(n, "balanced")[0], _measure_pairwise_traffic(n)),
        rounds=1, iterations=1,
    )
    print(f"\nn={n}: tree {tree_msgs:.1f} vs pairwise {pairwise_msgs:.1f} msg/round "
          f"(ratio {pairwise_msgs / tree_msgs:.1f}x, theory {n / 2:.1f}x)")
    assert pairwise_msgs == pytest.approx(n * (n - 1), rel=0.1)
    assert pairwise_msgs / tree_msgs == pytest.approx(n / 2.0, rel=0.25)


@pytest.mark.parametrize("kind", ["star", "balanced", "chain"])
def test_overlay_shapes(benchmark, kind):
    """All overlay shapes deliver the same aggregate at 2(n-1) messages;
    they differ only in round latency (height x link delay)."""
    per_round, tree = benchmark.pedantic(
        lambda: _measure_round_traffic(12, kind), rounds=1, iterations=1
    )
    print(f"\n{kind}: height {tree.height()}, {per_round:.1f} msg/round")
    assert per_round == pytest.approx(22.0, rel=0.15)
