"""Ablation — locality caps (the c_i extension of §3.1.2).

Fig 1's redirectors bias forwarding 75/25 for locality.  This ablation
quantifies the enforcement/locality trade-off on that topology: with hard
per-server push caps derived from the bias the LP may have to leave the
SLA split slightly uneven, while loosening the caps (slack) recovers the
coordinated (A 20, B 80) allocation.
"""

import math

import pytest

from repro.core.access import compute_access_levels
from repro.core.agreements import Agreement, AgreementGraph
from repro.scheduling.community import CommunityScheduler
from repro.scheduling.locality import locality_caps_from_bias
from repro.scheduling.window import WindowConfig


def _fig1_world():
    g = AgreementGraph()
    g.add_principal("S1", capacity=50.0)
    g.add_principal("S2", capacity=50.0)
    g.add_principal("A")
    g.add_principal("B")
    for server in ("S1", "S2"):
        g.add_agreement(Agreement(server, "A", 0.2, 1.0))
        g.add_agreement(Agreement(server, "B", 0.8, 1.0))
    return CommunityScheduler(compute_access_levels(g), WindowConfig(1.0))


@pytest.mark.parametrize("slack", [1.2, 1.5, 2.0])
def test_sla_vs_locality_slack(benchmark, slack):
    sched = _fig1_world()
    demand = {"A": 40.0, "B": 80.0}

    def run():
        # Aggregate caps per server from the two redirectors' biases:
        # R1 (load 40) biases 75/25, R2 (load 80) biases 25/75.
        r1 = locality_caps_from_bias(40.0, {"S1": 3, "S2": 1}, slack=slack)
        r2 = locality_caps_from_bias(80.0, {"S1": 1, "S2": 3}, slack=slack)
        caps = {k: r1[k] + r2[k] for k in ("S1", "S2")}
        caps.update({"A": math.inf, "B": math.inf})
        return sched.schedule(demand, locality_caps=caps)

    plan = benchmark.pedantic(run, rounds=1, iterations=1)
    a, b = plan.served("A"), plan.served("B")
    print(f"\nslack {slack}: A {a:.1f}, B {b:.1f}")
    # Guarantees hold at every slack level...
    assert b >= 80.0 - 1e-6
    assert a >= 20.0 - 1e-6


def test_unconstrained_baseline(benchmark):
    sched = _fig1_world()
    plan = benchmark(sched.schedule, {"A": 40.0, "B": 80.0})
    assert plan.served("A") == pytest.approx(20.0)
    assert plan.served("B") == pytest.approx(80.0)
