"""Sensitivity sweeps around the paper's fixed parameters.

Each test runs one sweep from :mod:`repro.experiments.sweeps` and asserts
the qualitative conclusion; the printed tables are the series a sweep
figure would plot.
"""

from repro.experiments.sweeps import (
    sweep_cache,
    sweep_delay,
    sweep_redirectors,
    sweep_window,
)


def _show(points, knob_name, extras=()):
    print(f"\n{knob_name:>12} | {'B req/s':>8} | {'A req/s':>8} | {'err %':>6}", end="")
    for e in extras:
        print(f" | {e:>14}", end="")
    print()
    for p in points:
        print(f"{p.knob:12.3f} | {p.b_rate:8.1f} | {p.a_rate:8.1f} "
              f"| {p.enforcement_error * 100:6.1f}", end="")
        for e in extras:
            print(f" | {p.extra.get(e, float('nan')):14.1f}", end="")
        print()


def test_sweep_window(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_window(lengths=(0.05, 0.1, 0.25), duration=20.0),
        rounds=1, iterations=1,
    )
    _show(points, "window (s)")
    assert all(p.enforcement_error < 0.1 for p in points)


def test_sweep_delay(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_delay(delays=(0.005, 0.5, 2.0), duration=30.0),
        rounds=1, iterations=1,
    )
    _show(points, "delay (s)", extras=("ramp_b",))
    # Steady-state enforcement is delay-insensitive...
    assert all(p.enforcement_error < 0.1 for p in points)
    # ...but the start-up ramp degrades with delay (conservative fallback
    # lasts until the first broadcast).
    assert points[-1].extra["ramp_b"] <= points[0].extra["ramp_b"] + 5.0


def test_sweep_redirectors(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_redirectors(counts=(1, 2, 4), duration=25.0),
        rounds=1, iterations=1,
    )
    _show(points, "redirectors", extras=("messages_per_round",))
    assert all(p.enforcement_error < 0.1 for p in points)


def test_sweep_cache(benchmark):
    points = benchmark.pedantic(
        lambda: sweep_cache(tolerances=(0.0, 0.05, 0.25), duration=20.0),
        rounds=1, iterations=1,
    )
    _show(points, "cache tol", extras=("lp_solves", "cache_hits"))
    # Enforcement holds across the whole tolerance range...
    assert all(p.enforcement_error < 0.1 for p in points)
    # ...while solve counts collapse.
    assert points[-1].extra["lp_solves"] < 0.5 * points[0].extra["lp_solves"]
