"""Scale benchmark tier: the per-request hot path at >= 100k requests.

The paper's testbed tops out at a few thousand requests per second; the
reproduction's value as a study tool comes from running *much* bigger
scenarios.  These benchmarks drive the full client -> redirector -> server
round trip through at least 100k requests per run, A/B-ing the vectorised
fast lane (``fast_lane=True``, chunked :class:`WorkloadStream` draws +
callback open loop) against the retained scalar path.

The open-loop speedup assertion is the PR's acceptance gate: the fast
lane must clear 3x the scalar path's throughput.  Headline medians land
in ``benchmarks/BENCH_core.json`` via ``record_bench``.
"""

import os
import time

from repro.analysis.invariants import InvariantChecker
from repro.cluster.client import ClientMachine, Redirect
from repro.cluster.server import Server
from repro.cluster.workload import RequestMix
from repro.experiments.benchrecord import record_bench
from repro.sim.engine import Simulator
from repro.sim.monitor import RateMeter
from repro.sim.rng import RngStreams

BENCH_PATH = os.path.join(os.path.dirname(__file__), "BENCH_core.json")

OPEN_REQUESTS = 100_000
OPEN_RATE = 1000.0          # req/s; 100 s simulated => 100k requests
CLOSED_REQUESTS = 100_000
CLOSED_CAPACITY = 10_000.0  # req/s; closed loop saturates the server


class _StaticRedirector:
    """Always redirect to the one server: isolates the request path itself
    (generation, dispatch, service, completion) from scheduling policy."""

    def __init__(self, server):
        self._decision = Redirect(server)

    def handle(self, request, done=None):
        return self._decision


def _run_open(fast_lane: bool):
    """One open-loop run; returns (completed, meter) for sanity checks."""
    sim = Simulator()
    streams = RngStreams(7)
    server = Server(sim, "srv", capacity=1e9)
    red = _StaticRedirector(server)
    times = []
    client = ClientMachine(
        sim, "c0", "A", red, rate=OPEN_RATE,
        rng=streams.get("client:c0"),
        fast_lane=fast_lane,
        on_response=lambda req: times.append(req.completed_at),
    )
    sim.run(until=OPEN_REQUESTS / OPEN_RATE)
    meter = RateMeter(bin_width=1.0)
    meter.record_many("A", times)
    assert client.completed >= OPEN_REQUESTS
    assert meter.total("A") == client.completed
    return client.completed, meter


def _run_open_checked():
    """Open loop on the fast lane with the runtime invariant checker
    watching the server — measures the checker's hot-path overhead."""
    sim = Simulator()
    streams = RngStreams(7)
    server = Server(sim, "srv", capacity=1e9)
    red = _StaticRedirector(server)
    checker = InvariantChecker()
    checker.watch_server(sim, server, window=0.1)
    client = ClientMachine(
        sim, "c0", "A", red, rate=OPEN_RATE,
        rng=streams.get("client:c0"),
        fast_lane=True,
    )
    sim.run(until=OPEN_REQUESTS / OPEN_RATE)
    assert client.completed >= OPEN_REQUESTS
    assert checker.checks_run > 0
    assert checker.violations == []
    return client.completed


def _run_closed(fast_lane: bool):
    """Closed loop: 64 virtual users saturating a 10k req/s server."""
    sim = Simulator()
    streams = RngStreams(7)
    server = Server(sim, "srv", capacity=CLOSED_CAPACITY)
    red = _StaticRedirector(server)
    client = ClientMachine(
        sim, "c0", "A", red, rate=OPEN_RATE,
        rng=streams.get("client:c0"),
        mode="closed", users=64, think=0.0,
        fast_lane=fast_lane,
    )
    sim.run(until=CLOSED_REQUESTS / CLOSED_CAPACITY + 1.0)
    assert client.completed >= CLOSED_REQUESTS
    return client.completed


def _best_of(fn, reps=3):
    """Best-of-N wall-clock (best, not median: scheduling noise only ever
    adds time) plus the last run's return value."""
    best = float("inf")
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_request_path_open_fast(benchmark):
    """100k-request open loop through the vectorised fast lane."""
    completed, _ = benchmark.pedantic(
        lambda: _run_open(fast_lane=True), rounds=3, iterations=1,
    )
    median_s = benchmark.stats.stats.median
    record_bench(
        "request_path_open_fast", median_s * 1000.0,
        meta={"requests": completed,
              "reqs_per_s": round(completed / median_s)},
        path=BENCH_PATH,
    )


def test_request_path_open_scalar(benchmark):
    """Same scenario through the scalar A/B path (``fast_lane=False``)."""
    completed, _ = benchmark.pedantic(
        lambda: _run_open(fast_lane=False), rounds=3, iterations=1,
    )
    median_s = benchmark.stats.stats.median
    record_bench(
        "request_path_open_scalar", median_s * 1000.0,
        meta={"requests": completed,
              "reqs_per_s": round(completed / median_s)},
        path=BENCH_PATH,
    )


def test_request_path_open_speedup():
    """Acceptance gate: fast lane >= 3x scalar throughput, open loop."""
    t_fast, (n_fast, _) = _best_of(lambda: _run_open(fast_lane=True))
    t_scalar, (n_scalar, _) = _best_of(lambda: _run_open(fast_lane=False))
    fast_rate = n_fast / t_fast
    scalar_rate = n_scalar / t_scalar
    speedup = fast_rate / scalar_rate
    record_bench(
        "request_path_open_speedup", t_fast * 1000.0,
        meta={"speedup_x": round(speedup, 2),
              "fast_reqs_per_s": round(fast_rate),
              "scalar_reqs_per_s": round(scalar_rate)},
        path=BENCH_PATH,
    )
    assert speedup >= 3.0, (
        f"fast lane {fast_rate:.0f} req/s vs scalar {scalar_rate:.0f} req/s "
        f"= {speedup:.2f}x (< 3x floor)"
    )


def test_request_path_open_checked():
    """Invariant-checker overhead on the open-loop fast lane.

    Target: < 5% over the unchecked run (the checker adds one callback
    per completion and ten window ticks per simulated second); exactly
    0% when disabled, since no hooks are installed at all.
    """
    t_plain, (n_plain, _) = _best_of(lambda: _run_open(fast_lane=True))
    t_checked, n_checked = _best_of(_run_open_checked)
    overhead_pct = (t_checked / t_plain - 1.0) * 100.0
    record_bench(
        "request_path_open_checked", t_checked * 1000.0,
        meta={"requests": n_checked,
              "reqs_per_s": round(n_checked / t_checked),
              "overhead_pct": round(overhead_pct, 2),
              "target_pct": 5.0},
        path=BENCH_PATH,
    )
    assert n_checked == n_plain


def test_request_path_closed_fast(benchmark):
    """100k-request closed loop (64 users, zero think) on the fast lane."""
    completed = benchmark.pedantic(
        lambda: _run_closed(fast_lane=True), rounds=3, iterations=1,
    )
    median_s = benchmark.stats.stats.median
    record_bench(
        "request_path_closed_fast", median_s * 1000.0,
        meta={"requests": completed,
              "reqs_per_s": round(completed / median_s)},
        path=BENCH_PATH,
    )


def test_request_path_closed_scalar(benchmark):
    completed = benchmark.pedantic(
        lambda: _run_closed(fast_lane=False), rounds=3, iterations=1,
    )
    median_s = benchmark.stats.stats.median
    record_bench(
        "request_path_closed_scalar", median_s * 1000.0,
        meta={"requests": completed,
              "reqs_per_s": round(completed / median_s)},
        path=BENCH_PATH,
    )


def test_request_path_size_cost_mix(benchmark):
    """Fast lane with size-proportional costs (the §4 'large requests are
    multiple small ones' accounting) — exercises the cost block path."""
    def run():
        sim = Simulator()
        streams = RngStreams(7)
        server = Server(sim, "srv", capacity=1e9)
        client = ClientMachine(
            sim, "c0", "A", _StaticRedirector(server), rate=OPEN_RATE,
            rng=streams.get("client:c0"),
            mix=RequestMix(size_cost=True),
            fast_lane=True,
        )
        sim.run(until=OPEN_REQUESTS / OPEN_RATE)
        return client.completed

    completed = benchmark.pedantic(run, rounds=1, iterations=1)
    assert completed >= OPEN_REQUESTS
    median_s = benchmark.stats.stats.median
    record_bench(
        "request_path_size_cost", median_s * 1000.0,
        meta={"requests": completed,
              "reqs_per_s": round(completed / median_s)},
        path=BENCH_PATH,
    )
