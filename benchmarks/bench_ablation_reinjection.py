"""Ablation — L4 SYN reinjection: spread across the window vs burst.

The paper's kernel thread "periodically checks these queues, reinjecting
packets back into the system in subsequent time windows".  Releasing a
window's worth of queued SYNs in one burst recreates the bunching problem
the L7 prototype hit; spreading the reinjections across the window keeps
server queues flat.  Measured here: server queue peak and response-time
tail under a saturating workload.
"""

import numpy as np
import pytest

from repro.core.agreements import Agreement, AgreementGraph
from repro.experiments.harness import Scenario


def _run(spread: bool):
    g = AgreementGraph()
    g.add_principal("A", capacity=320.0)
    g.add_principal("B", capacity=320.0)
    g.add_agreement(Agreement("B", "A", 0.5, 0.5))
    sc = Scenario(g, seed=7)
    sa = sc.server("SA", "A", 320.0)
    sb = sc.server("SB", "B", 320.0)
    switch = sc.l4("SW", {"A": sa, "B": sb}, spread_reinjection=spread)
    ca = sc.client("CA", "A", switch, rate=800.0)
    cb = sc.client("CB", "B", switch, rate=400.0)
    peaks = []
    sc.sim.every(0.01, lambda: peaks.append(sa.queue_length + sb.queue_length))
    sc.run(15.0)
    rts = np.array(ca.response_times + cb.response_times)
    return {
        "queue_peak": max(peaks),
        "rt_p95": float(np.percentile(rts, 95)) if rts.size else 0.0,
        "a_rate": sc.meter.mean_rate("A", 5.0, 15.0),
        "b_rate": sc.meter.mean_rate("B", 5.0, 15.0),
    }


def test_spread_vs_burst(benchmark):
    spread, burst = benchmark.pedantic(
        lambda: (_run(True), _run(False)), rounds=1, iterations=1
    )
    print(f"\nspread: queue peak {spread['queue_peak']}, "
          f"p95 RT {spread['rt_p95'] * 1000:.0f} ms")
    print(f"burst:  queue peak {burst['queue_peak']}, "
          f"p95 RT {burst['rt_p95'] * 1000:.0f} ms")
    # Enforcement is identical either way...
    for r in (spread, burst):
        assert r["a_rate"] == pytest.approx(480.0, rel=0.08)
        assert r["b_rate"] == pytest.approx(160.0, rel=0.12)
    # ...but bursting builds visibly deeper server queues.
    assert burst["queue_peak"] >= spread["queue_peak"]
