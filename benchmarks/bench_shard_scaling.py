"""Shard-scaling benchmark: one scenario spread across worker processes.

The sharded lane partitions a fig6-shaped world's clusters across R
worker processes that synchronize only at window boundaries (window-epoch
barrier, one combining-tree merge + LP solve per window in the parent).
This bench drives a 64-cluster world with ~28M admitted requests through
shards=1 (inline reference) and shards=8 and records the wall-clock
curve into ``benchmarks/BENCH_core.json``.

The >=3x speedup floor only means anything when 8 workers can actually
run concurrently, so the assertion is gated on the affinity mask:
single-digit-core CI boxes and 1-core containers record the honest curve
(with the core count in the meta) and skip the floor.  Digest parity —
``shards=1`` bit-identical to ``shards=R`` — is asserted here too, on a
small world, so the perf numbers can never come from diverging work.
"""

import os
import time

from repro.experiments.benchrecord import record_bench
from repro.experiments.sharded import run_sharded

BENCH_PATH = os.path.join(os.path.dirname(__file__), "BENCH_core.json")

# fig6 x1000 load over 32 replicas: 64 clusters, 96 clients, ~28M
# admitted requests across 30 window epochs.  Heavy per-epoch columns
# keep the pipe/pickle barrier cost a small fraction of each window.
REPLICAS = 32
LOAD_SCALE = 1000.0
DURATION_SCALE = 0.01
SEED = 3
SHARDS = 8
SPEEDUP_FLOOR = 3.0


def _cores() -> int:
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0))
        except OSError:
            pass
    return max(1, os.cpu_count() or 1)


def _run(shards: int):
    return run_sharded(
        "fig6", duration_scale=DURATION_SCALE, seed=SEED, shards=shards,
        replicas=REPLICAS, load_scale=LOAD_SCALE,
    )


def _admitted(result) -> int:
    return int(sum(float(a.sum()) for per in result.admitted.values()
                   for a in per.values()))


def _best_of(fn, reps=3):
    """Best-of-N wall-clock (best, not median: scheduling noise only ever
    adds time) plus the last run's return value."""
    best = float("inf")
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_shard_parity_smoke():
    """Digest parity on a small world: perf never buys divergence."""
    digests = {
        shards: run_sharded("fig6", duration_scale=0.02, seed=0,
                            shards=shards, replicas=4).digest()
        for shards in (1, 2, 4)
    }
    assert len(set(digests.values())) == 1, digests


def test_shard_scaling_serial(benchmark):
    """Inline reference: the whole world stepped in the parent process."""
    res = benchmark.pedantic(lambda: _run(1), rounds=3, iterations=1)
    admitted = _admitted(res)
    median_s = benchmark.stats.stats.median
    record_bench(
        "shard_scaling_1", median_s * 1000.0,
        meta={"admitted": admitted, "clusters": len(res.clusters),
              "windows": res.n_windows,
              "reqs_per_s": round(admitted / median_s)},
        path=BENCH_PATH,
    )


def test_shard_scaling_sharded(benchmark):
    """Same world across 8 worker processes with window-epoch barriers.

    ``poll_wait_ms`` is the parent's cumulative barrier-poll sleep (the
    capped-exponential-backoff recv loop) and ``checkpoint_kb`` the
    retained epoch-checkpoint footprint at K=2 — the self-healing
    machinery's overhead, visible next to the wall-clock it rides on.
    """
    res = benchmark.pedantic(lambda: _run(SHARDS), rounds=3, iterations=1)
    assert res.shards == SHARDS
    admitted = _admitted(res)
    median_s = benchmark.stats.stats.median
    record_bench(
        "shard_scaling_8", median_s * 1000.0,
        meta={"admitted": admitted, "clusters": len(res.clusters),
              "windows": res.n_windows, "cores": _cores(),
              "reqs_per_s": round(admitted / median_s),
              "barrier_polls": res.barrier_polls,
              "poll_wait_ms": round(res.barrier_wait_s * 1000.0, 1),
              "checkpoint_kb": round(res.checkpoint_bytes / 1024.0, 1)},
        path=BENCH_PATH,
    )


def test_shard_scaling_speedup():
    """Record the scaling curve; enforce >=3x only with >=8 usable cores."""
    t_1, res_1 = _best_of(lambda: _run(1))
    t_r, res_r = _best_of(lambda: _run(SHARDS))
    assert res_1.digest() == res_r.digest(), "sharded run diverged"
    cores = _cores()
    speedup = t_1 / t_r
    record_bench(
        "shard_scaling_speedup", t_r * 1000.0,
        meta={"speedup_x": round(speedup, 2), "cores": cores,
              "shards": SHARDS, "admitted": _admitted(res_r),
              "serial_s": round(t_1, 3), "sharded_s": round(t_r, 3)},
        path=BENCH_PATH,
    )
    if cores >= SHARDS:
        assert speedup >= SPEEDUP_FLOOR, (
            f"{SHARDS} shards on {cores} cores: {speedup:.2f}x "
            f"(< {SPEEDUP_FLOOR:.0f}x floor)"
        )
