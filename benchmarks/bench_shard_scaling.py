"""Shard-scaling benchmark: one scenario spread across worker processes.

The sharded lane partitions a fig6-shaped world's clusters across R
worker processes that synchronize only at window boundaries (window-epoch
barrier, one combining-tree merge + LP solve per window in the parent).
This bench drives a 64-cluster world with ~28M admitted requests through
shards=1 (inline reference) and shards=8 on *both* data planes — the
zero-copy shared-memory seqlock plane (the default) and the pickled pipe
transport — and records the wall-clock curve plus the per-epoch byte
accounting into ``benchmarks/BENCH_core.json``.  ``bytes_per_epoch`` is
the parent-handled data-plane traffic per window: pickled message bytes
on the pipe plane, copied float64 columns + sequence words on the shm
plane (the deferred checkpoint ring is reported separately as
``ring_bytes_per_epoch`` — it never crosses to the parent in steady
state, which is the point).

The >=3x speedup floor only means anything when 8 workers can actually
run concurrently, so the assertion is gated on the affinity mask:
single-digit-core CI boxes and 1-core containers record the honest curve
(with the core count in the meta) and skip the floor.  Digest parity —
``shards=1`` bit-identical to ``shards=R`` on either transport — is
asserted here too, on a small world, so the perf numbers can never come
from diverging work.
"""

import os
import time

from repro.experiments.benchrecord import record_bench
from repro.experiments.sharded import run_sharded

BENCH_PATH = os.path.join(os.path.dirname(__file__), "BENCH_core.json")

# fig6 x1000 load over 32 replicas: 64 clusters, 96 clients, ~28M
# admitted requests across 30 window epochs.  Heavy per-epoch columns
# keep the barrier cost a small fraction of each window.
REPLICAS = 32
LOAD_SCALE = 1000.0
DURATION_SCALE = 0.01
SEED = 3
SHARDS = 8
SPEEDUP_FLOOR = 3.0
BYTES_RATIO_FLOOR = 10.0


def _cores() -> int:
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0))
        except OSError:
            pass
    return max(1, os.cpu_count() or 1)


def _run(shards: int, transport: str = "shm"):
    return run_sharded(
        "fig6", duration_scale=DURATION_SCALE, seed=SEED, shards=shards,
        replicas=REPLICAS, load_scale=LOAD_SCALE, transport=transport,
    )


def _admitted(result) -> int:
    return int(sum(float(a.sum()) for per in result.admitted.values()
                   for a in per.values()))


def _best_of(fn, reps=3):
    """Best-of-N wall-clock (best, not median: scheduling noise only ever
    adds time) plus the last run's return value."""
    best = float("inf")
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _plane_meta(res) -> dict:
    """The data-plane breakdown every sharded entry records."""
    return {
        "data_plane": res.data_plane,
        "bytes_per_epoch": res.bytes_per_epoch,
        "ring_bytes_per_epoch": res.ring_bytes_per_epoch,
        "barrier_polls": res.barrier_polls,
        "barrier_wait_ms": round(res.barrier_wait_s * 1000.0, 1),
        "plane_polls": res.plane_polls,
        "plane_wait_ms": round(res.plane_wait_s * 1000.0, 1),
    }


def test_shard_parity_smoke():
    """Digest parity on a small world: perf never buys divergence —
    across shard counts and across transports."""
    digests = {
        (shards, transport): run_sharded(
            "fig6", duration_scale=0.02, seed=0, shards=shards,
            replicas=4, transport=transport).digest()
        for shards in (1, 2, 4)
        for transport in ("pipe", "shm")
    }
    assert len(set(digests.values())) == 1, digests


def test_shard_scaling_serial(benchmark):
    """Inline reference: the whole world stepped in the parent process."""
    res = benchmark.pedantic(lambda: _run(1), rounds=3, iterations=1)
    admitted = _admitted(res)
    median_s = benchmark.stats.stats.median
    record_bench(
        "shard_scaling_1", median_s * 1000.0,
        meta={"admitted": admitted, "clusters": len(res.clusters),
              "windows": res.n_windows,
              "reqs_per_s": round(admitted / median_s)},
        path=BENCH_PATH,
    )


def test_shard_scaling_sharded(benchmark):
    """Same world across 8 worker processes, shared-memory data plane.

    The meta splits the parent's idle time into ``barrier_wait_ms``
    (pipe-poll sleep: control traffic and, on the pipe plane, boundary
    messages) and ``plane_wait_ms`` (seqlock-poll sleep on the shm
    plane); ``checkpoint_kb`` is the retained epoch-checkpoint footprint
    at K=2 — the self-healing machinery's overhead, visible next to the
    wall-clock it rides on.
    """
    res = benchmark.pedantic(lambda: _run(SHARDS), rounds=3, iterations=1)
    assert res.shards == SHARDS
    admitted = _admitted(res)
    median_s = benchmark.stats.stats.median
    meta = {"admitted": admitted, "clusters": len(res.clusters),
            "windows": res.n_windows, "cores": _cores(),
            "reqs_per_s": round(admitted / median_s),
            "checkpoint_kb": round(res.checkpoint_bytes / 1024.0, 1)}
    meta.update(_plane_meta(res))
    record_bench("shard_scaling_8", median_s * 1000.0, meta=meta,
                 path=BENCH_PATH)


def test_shard_scaling_sharded_pipe(benchmark):
    """The pickled-pipe transport, kept measured so the shm win stays
    honest (and so a pipe regression can't hide behind the default)."""
    res = benchmark.pedantic(lambda: _run(SHARDS, "pipe"),
                             rounds=3, iterations=1)
    assert res.data_plane == "pipe"
    median_s = benchmark.stats.stats.median
    meta = {"admitted": _admitted(res), "cores": _cores(),
            "windows": res.n_windows}
    meta.update(_plane_meta(res))
    record_bench("shard_scaling_8_pipe", median_s * 1000.0, meta=meta,
                 path=BENCH_PATH)


def test_shard_scaling_speedup():
    """Record the scaling curve; enforce >=3x only with >=8 usable cores.

    Also records the transport comparison at 8 shards: wall-clock for
    pipe vs shm and the parent-handled bytes-per-epoch ratio, which must
    be >=10x in shm's favour wherever shared memory is available.
    """
    t_1, res_1 = _best_of(lambda: _run(1))
    t_r, res_r = _best_of(lambda: _run(SHARDS))
    t_p, res_p = _best_of(lambda: _run(SHARDS, "pipe"))
    assert res_1.digest() == res_r.digest(), "sharded run diverged"
    assert res_p.digest() == res_r.digest(), "transports diverged"
    cores = _cores()
    speedup = t_1 / t_r
    meta = {"speedup_x": round(speedup, 2), "cores": cores,
            "shards": SHARDS, "admitted": _admitted(res_r),
            "serial_s": round(t_1, 3), "sharded_s": round(t_r, 3),
            "pipe_sharded_s": round(t_p, 3),
            "data_plane": res_r.data_plane,
            "bytes_per_epoch": res_r.bytes_per_epoch,
            "pipe_bytes_per_epoch": res_p.bytes_per_epoch}
    if res_r.data_plane == "shm":
        meta["bytes_ratio_x"] = round(
            res_p.bytes_per_epoch / res_r.bytes_per_epoch, 1)
    else:                                   # platform without POSIX shm
        meta["transport_fallback"] = res_r.transport_fallback
    record_bench("shard_scaling_speedup", t_r * 1000.0, meta=meta,
                 path=BENCH_PATH)
    if res_r.data_plane == "shm":
        assert res_p.bytes_per_epoch >= \
            BYTES_RATIO_FLOOR * res_r.bytes_per_epoch, (
                f"pipe {res_p.bytes_per_epoch} B/epoch vs shm "
                f"{res_r.bytes_per_epoch} B/epoch: ratio below "
                f"{BYTES_RATIO_FLOOR:.0f}x"
            )
    if cores >= SHARDS:
        assert speedup >= SPEEDUP_FLOOR, (
            f"{SHARDS} shards on {cores} cores: {speedup:.2f}x "
            f"(< {SPEEDUP_FLOOR:.0f}x floor)"
        )
