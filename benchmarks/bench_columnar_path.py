"""Mega-scale benchmark tier: the columnar lane at millions of requests.

The slotted fast lane made 100k-request runs cheap; the columnar lane's
target is two orders of magnitude beyond that — whole open-loop workload
phases advanced as numpy columns, one engine event per window.  This
bench drives a fig6-shaped world (two L7 redirectors over one shared
server, A/B agreements, three demand phases) with every rate and the
server capacity scaled x100, pushing >= 5 million requests through the
full admission/redirect/serve/complete pipeline in seconds.

The speedup assertion is the PR's acceptance gate: the columnar lane must
clear 10x the slotted lane's throughput on the same world.  The slotted
baseline runs a shorter timeline of the identical scenario (same rates,
same shape) and both sides are compared on requests per wall-clock
second, so the baseline does not cost CI minutes.  Headline medians land
in ``benchmarks/BENCH_core.json`` via ``record_bench``.
"""

import os
import time

from repro.core.agreements import Agreement, AgreementGraph
from repro.experiments.benchrecord import record_bench
from repro.experiments.harness import Scenario

BENCH_PATH = os.path.join(os.path.dirname(__file__), "BENCH_core.json")

# fig6 x100: capacity 320 -> 32k, A 2x135 -> one 27k client, B 135 -> 13.5k.
# One client per principal keeps each principal's stream a single sorted
# column.  T=47 gives 27k*3T + 13.5k*2T = 5.076M issued requests.
CAPACITY = 32_000.0
RATE_A = 27_000.0
RATE_B = 13_500.0
T_COLUMNAR = 47.0
T_SLOTTED = 3.0
REQUESTS_FLOOR = 5_000_000
SPEEDUP_FLOOR = 10.0


def _mega_graph() -> AgreementGraph:
    g = AgreementGraph()
    g.add_principal("S", capacity=CAPACITY)
    g.add_principal("A")
    g.add_principal("B")
    g.add_agreement(Agreement("S", "A", 0.2, 1.0))
    g.add_agreement(Agreement("S", "B", 0.8, 1.0))
    return g


def _run_mega(lane: str, T: float) -> Scenario:
    """One fig6-shaped mega run; returns the finished scenario."""
    sc = Scenario(_mega_graph(), seed=11, lane=lane)
    server = sc.server("S", "S", CAPACITY)
    r1 = sc.l7("R1", {"S": server}, n_redirectors=2)
    r2 = sc.l7("R2", {"S": server}, n_redirectors=2)
    sc.connect_tree(link_delay=0.005)
    sc.client("C1", "A", r1, rate=RATE_A, windows=[(0.0, 3 * T)],
              max_retry_pool=0)
    sc.client("C2", "B", r2, rate=RATE_B,
              windows=[(0.0, T), (2 * T, 3 * T)], max_retry_pool=0)
    sc.run(3 * T)
    return sc


def _issued(sc: Scenario) -> int:
    return sum(c.issued for c in sc.clients.values())


def _best_of(fn, reps=3):
    """Best-of-N wall-clock (best, not median: scheduling noise only ever
    adds time) plus the last run's return value."""
    best = float("inf")
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_columnar_path_fast(benchmark):
    """>= 5M-request open loop through the columnar lane."""
    sc = benchmark.pedantic(
        lambda: _run_mega("columnar", T_COLUMNAR), rounds=3, iterations=1,
    )
    assert sc.lane == "columnar" and sc.lane_fallback is None
    issued = _issued(sc)
    assert sc.columnar is not None and sc.columnar.requests == issued
    assert issued >= REQUESTS_FLOOR, f"only {issued} requests issued"
    median_s = benchmark.stats.stats.median
    record_bench(
        "columnar_path_fast", median_s * 1000.0,
        meta={"requests": issued,
              "reqs_per_s": round(issued / median_s)},
        path=BENCH_PATH,
    )


def test_columnar_path_slotted(benchmark):
    """Same world on the slotted fast lane (shorter timeline, same rates)."""
    sc = benchmark.pedantic(
        lambda: _run_mega("slotted", T_SLOTTED), rounds=3, iterations=1,
    )
    assert sc.lane == "slotted"
    issued = _issued(sc)
    median_s = benchmark.stats.stats.median
    record_bench(
        "columnar_path_slotted", median_s * 1000.0,
        meta={"requests": issued,
              "reqs_per_s": round(issued / median_s)},
        path=BENCH_PATH,
    )


def test_columnar_path_speedup():
    """Acceptance gate: columnar >= 10x slotted throughput, same world."""
    t_col, sc_col = _best_of(lambda: _run_mega("columnar", T_COLUMNAR))
    t_slot, sc_slot = _best_of(lambda: _run_mega("slotted", T_SLOTTED))
    n_col = _issued(sc_col)
    n_slot = _issued(sc_slot)
    assert n_col >= REQUESTS_FLOOR
    col_rate = n_col / t_col
    slot_rate = n_slot / t_slot
    speedup = col_rate / slot_rate
    record_bench(
        "columnar_path_speedup", t_col * 1000.0,
        meta={"speedup_x": round(speedup, 2),
              "requests": n_col,
              "columnar_reqs_per_s": round(col_rate),
              "slotted_reqs_per_s": round(slot_rate)},
        path=BENCH_PATH,
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"columnar {col_rate:.0f} req/s vs slotted {slot_rate:.0f} req/s "
        f"= {speedup:.2f}x (< {SPEEDUP_FLOOR:.0f}x floor)"
    )
