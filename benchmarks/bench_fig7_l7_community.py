"""Fig 7 — community metric: busier principals get more optional capacity.

Both principals hold [0.2, 1] of a 250 req/s server; A offers twice B's
load and is served at twice B's rate (max-min fraction optimisation).
"""

from _helpers import FIGURE_SCALE, run_figure

from repro.experiments.figures import run_fig7


def test_fig7_l7_community(benchmark):
    result = run_figure(benchmark, run_fig7, duration_scale=FIGURE_SCALE, seed=0)
    steady = result.phase("steady")
    ratio = steady.rate("A") / steady.rate("B")
    print(f"\nA {steady.rate('A'):.1f}  B {steady.rate('B'):.1f}  ratio {ratio:.2f}")
    assert 1.8 <= ratio <= 2.2
