"""Fig 6 — L7 redirectors respect sharing agreements (provider context).

Three phases over two redirectors and a 320 req/s server; B [0.8,1] is
fully served at its single-client 135 req/s while A [0.2,1] absorbs the
remainder, recovering when B pauses.
"""

from _helpers import FIGURE_SCALE, run_figure

from repro.experiments.figures import run_fig6


def test_fig6_l7_provider(benchmark):
    result = run_figure(benchmark, run_fig6, duration_scale=FIGURE_SCALE, seed=0)
    for stats in result.phases:
        print(f"\n{stats.name}: A {stats.rate('A'):.1f}  B {stats.rate('B'):.1f}")
