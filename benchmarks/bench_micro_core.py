"""Micro-benchmarks: the substrate hot paths.

These quantify the headroom behind the paper's claims — e.g. that a
redirector can afford an LP solve plus quota bookkeeping every 100 ms.

Headline medians land in ``benchmarks/BENCH_core.json`` (committed) via
:func:`repro.experiments.benchrecord.record_bench`, so perf changes show
up in diffs.
"""

import os

import numpy as np

from repro.core.access import compute_access_levels
from repro.core.agreements import Agreement, AgreementGraph
from repro.experiments.benchrecord import record_bench
from repro.scheduling.community import CommunityScheduler
from repro.scheduling.queueing import ImplicitQuota
from repro.scheduling.window import WindowConfig
from repro.scheduling.wrr import SmoothWeightedRoundRobin
from repro.sim.engine import Simulator

BENCH_PATH = os.path.join(os.path.dirname(__file__), "BENCH_core.json")


def _record(benchmark, name, **meta):
    """Stash this benchmark's median (ms) in the committed ledger."""
    record_bench(
        name, benchmark.stats.stats.median * 1000.0, meta=meta, path=BENCH_PATH
    )


def test_engine_event_throughput(benchmark):
    """Raw kernel throughput: schedule+dispatch of 100k chained events."""
    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 100_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    assert benchmark.pedantic(run, rounds=1, iterations=3) == 100_000


def test_engine_process_switching(benchmark):
    """Generator-process context switches (10k processes x 10 yields)."""
    def run():
        sim = Simulator()
        done = [0]

        def proc():
            for _ in range(10):
                yield 0.01
            done[0] += 1

        for _ in range(1_000):
            sim.process(proc())
        sim.run()
        return done[0]

    assert benchmark.pedantic(run, rounds=1, iterations=3) == 1_000


def test_access_level_computation(benchmark):
    """Closed-form flow solve for a 12-principal agreement mesh."""
    g = AgreementGraph()
    for i in range(12):
        g.add_principal(f"P{i}", capacity=100.0)
    for i in range(12):
        g.add_agreement(Agreement(f"P{i}", f"P{(i + 1) % 12}", 0.2, 0.4))
        g.add_agreement(Agreement(f"P{i}", f"P{(i + 5) % 12}", 0.2, 0.3))
    acc = benchmark(compute_access_levels, g)
    assert acc.MC.sum() > 0


def test_quota_admission_path(benchmark):
    """Per-request admission cost (the L7 fast path)."""
    quota = ImplicitQuota([f"P{i}" for i in range(8)])
    quota.new_window({f"P{i}": 1e12 for i in range(8)})

    def run():
        for _ in range(10_000):
            quota.try_admit("P3")

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_smooth_wrr_pick(benchmark):
    wrr = SmoothWeightedRoundRobin({f"s{i}": float(i + 1) for i in range(8)})

    def run():
        for _ in range(10_000):
            wrr.next()

    benchmark.pedantic(run, rounds=3, iterations=1)


# -- window scheduling: LP solve cache and warm start -----------------------

_N_WINDOWS = 1000


def _sharing_access():
    g = AgreementGraph()
    g.add_principal("S", capacity=320.0)
    g.add_principal("A")
    g.add_principal("B")
    g.add_agreement(Agreement("S", "A", 0.2, 1.0))
    g.add_agreement(Agreement("S", "B", 0.8, 1.0))
    return compute_access_levels(g)


def _steady_demands(windows=_N_WINDOWS):
    """Three steady plateaus — the paper's phased experiments in miniature."""
    out = []
    for w in range(windows):
        if w < windows * 2 // 5:
            out.append({"A": 27.0, "B": 13.5})
        elif w < windows * 7 // 10:
            out.append({"A": 40.5, "B": 13.5})
        else:
            out.append({"A": 27.0, "B": 0.0})
    return out


def _run_windows(demands, **kw):
    sched = CommunityScheduler(_sharing_access(), WindowConfig(0.1), **kw)
    for d in demands:
        sched.schedule(d)
    return sched


def test_window_schedule_cold(benchmark):
    """1000 windows of steady demand, every window solved from scratch."""
    demands = _steady_demands()
    sched = benchmark.pedantic(
        lambda: _run_windows(demands, lp_cache=False, warm_start=False),
        rounds=1, iterations=1,
    )
    assert sched.lp_solves == _N_WINDOWS
    _record(benchmark, "window_schedule_cold",
            windows=_N_WINDOWS, lp_solves=sched.lp_solves)


def test_window_schedule_cached(benchmark):
    """Same 1000 windows with the exact-demand SolveCache on.

    Steady plateaus mean only a handful of distinct demand vectors, so the
    cache must cut full LP solves by well over the 3x acceptance floor.
    """
    demands = _steady_demands()
    sched = benchmark.pedantic(
        lambda: _run_windows(demands, lp_cache=True),
        rounds=1, iterations=1,
    )
    cold_solves = _N_WINDOWS                    # one per window, by construction
    assert cold_solves >= 3 * sched.lp_solves, (
        f"cache saved too little: {sched.lp_solves} solves vs {cold_solves} cold"
    )
    assert sched.cache_hits == _N_WINDOWS - sched.lp_solves
    _record(benchmark, "window_schedule_cached",
            windows=_N_WINDOWS, lp_solves=sched.lp_solves,
            cache_hits=sched.cache_hits)


def _drifting_demands(windows=200):
    """Slow per-window drift: every vector distinct, so the cache never
    hits and only the warm-started basis can help."""
    return [
        {"A": 27.0 + 0.01 * w, "B": 13.5 + 0.005 * w} for w in range(windows)
    ]


def test_window_schedule_warm_start(benchmark):
    """Drifting demand on the bounded backend: basis reuse vs cold starts."""
    demands = _drifting_demands()
    cold = _run_windows(demands, backend="bounded",
                        lp_cache=False, warm_start=False)
    warm = benchmark.pedantic(
        lambda: _run_windows(demands, backend="bounded",
                             lp_cache=False, warm_start=True),
        rounds=1, iterations=1,
    )
    assert warm.lp_solves == cold.lp_solves == len(demands)
    assert warm.lp_iterations <= cold.lp_iterations
    _record(benchmark, "window_schedule_warm_start",
            windows=len(demands), warm_iterations=warm.lp_iterations,
            cold_iterations=cold.lp_iterations)
