"""Micro-benchmarks: the substrate hot paths.

These quantify the headroom behind the paper's claims — e.g. that a
redirector can afford an LP solve plus quota bookkeeping every 100 ms.
"""

import numpy as np

from repro.core.access import compute_access_levels
from repro.core.agreements import Agreement, AgreementGraph
from repro.scheduling.queueing import ImplicitQuota
from repro.scheduling.wrr import SmoothWeightedRoundRobin
from repro.sim.engine import Simulator


def test_engine_event_throughput(benchmark):
    """Raw kernel throughput: schedule+dispatch of 100k chained events."""
    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 100_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    assert benchmark.pedantic(run, rounds=1, iterations=3) == 100_000


def test_engine_process_switching(benchmark):
    """Generator-process context switches (10k processes x 10 yields)."""
    def run():
        sim = Simulator()
        done = [0]

        def proc():
            for _ in range(10):
                yield 0.01
            done[0] += 1

        for _ in range(1_000):
            sim.process(proc())
        sim.run()
        return done[0]

    assert benchmark.pedantic(run, rounds=1, iterations=3) == 1_000


def test_access_level_computation(benchmark):
    """Closed-form flow solve for a 12-principal agreement mesh."""
    g = AgreementGraph()
    for i in range(12):
        g.add_principal(f"P{i}", capacity=100.0)
    for i in range(12):
        g.add_agreement(Agreement(f"P{i}", f"P{(i + 1) % 12}", 0.2, 0.4))
        g.add_agreement(Agreement(f"P{i}", f"P{(i + 5) % 12}", 0.2, 0.3))
    acc = benchmark(compute_access_levels, g)
    assert acc.MC.sum() > 0


def test_quota_admission_path(benchmark):
    """Per-request admission cost (the L7 fast path)."""
    quota = ImplicitQuota([f"P{i}" for i in range(8)])
    quota.new_window({f"P{i}": 1e12 for i in range(8)})

    def run():
        for _ in range(10_000):
            quota.try_admit("P3")

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_smooth_wrr_pick(benchmark):
    wrr = SmoothWeightedRoundRobin({f"s{i}": float(i + 1) for i in range(8)})

    def run():
        for _ in range(10_000):
            wrr.next()

    benchmark.pedantic(run, rounds=3, iterations=1)
