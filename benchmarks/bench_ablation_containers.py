"""Ablation — resource containers for long-lived requests.

The paper defers long-lived requests (media streams, parallel jobs) to
"a sandbox or a resource container environment" on the server side.  This
benchmark exercises the :class:`repro.cluster.containers.ContainerServer`
substitute: streams reserve rate within their container's guarantee while
short requests keep their WFQ share, and container isolation holds under a
hostile mix.
"""

import pytest

from repro.cluster.containers import ContainerServer
from repro.cluster.request import Request
from repro.sim.engine import Simulator


def _req(principal):
    return Request(principal=principal, client_id="c", created_at=0.0)


def _drive(with_streams: bool) -> dict:
    sim = Simulator()
    srv = ContainerServer(sim, "CS", 320.0, {"A": 0.5, "B": 0.5})
    if with_streams:
        # B dedicates most of its container to two long-lived streams.
        assert srv.open_stream("B", rate=80.0, duration=20.0)
        assert srv.open_stream("B", rate=40.0, duration=20.0)

    def offer(p):
        while sim.now < 20.0:
            srv.submit(_req(p))
            yield 1.0 / 400.0
    sim.process(offer("A"))
    sim.process(offer("B"))
    sim.run(until=20.0)
    return {"A": srv.served("A") / 20.0, "B": srv.served("B") / 20.0,
            "reserved": srv.reserved_rate}


def test_streams_charge_their_own_container(benchmark):
    plain, mixed = benchmark.pedantic(
        lambda: (_drive(False), _drive(True)), rounds=1, iterations=1
    )
    print(f"\nno streams:  A {plain['A']:.0f}  B {plain['B']:.0f} req/s")
    print(f"with streams: A {mixed['A']:.0f}  B {mixed['B']:.0f} req/s "
          f"(B also holds {mixed['reserved']:.0f} units/s of streams)")
    # Without streams: a fair 160/160 split under saturation.
    assert plain["A"] == pytest.approx(160.0, rel=0.08)
    # B's streams consume B's share; A's short-request service is intact.
    assert mixed["A"] == pytest.approx(plain["A"], rel=0.15)
    assert mixed["B"] < 0.5 * plain["B"]


def test_wfq_overhead(benchmark):
    """Cost of the WFQ pick relative to plain FIFO service."""
    def run():
        sim = Simulator()
        srv = ContainerServer(
            sim, "CS", 1e6, {f"P{i}": 1.0 / 8 for i in range(8)}
        )
        for i in range(5_000):
            srv.submit(_req(f"P{i % 8}"))
        sim.run()
        return sum(srv.served(f"P{i}") for i in range(8))

    assert benchmark.pedantic(run, rounds=1, iterations=3) == 5_000
