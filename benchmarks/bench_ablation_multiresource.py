"""Ablation — the multi-resource (vector) extension of §3.1.1.

Two effects are quantified on a server with equal CPU and network
capacity shared half/half between a CPU-bound and a network-bound
principal:

1. *Packing*: the vector LP co-schedules complementary profiles at nearly
   double the request rate a single-bottleneck view allows.
2. *Cost*: the vector solve stays a per-window-affordable LP as resource
   types are added.
"""

import pytest

from repro.core.agreements import Agreement, AgreementGraph
from repro.core.multiresource import compute_multiresource_access
from repro.scheduling.multiresource import MultiResourceCommunityScheduler
from repro.scheduling.window import WindowConfig

W = WindowConfig(0.1)


def _access(resources):
    g = AgreementGraph()
    g.add_principal("S")
    g.add_principal("A")
    g.add_principal("B")
    g.add_agreement(Agreement("S", "A", 0.5, 1.0))
    g.add_agreement(Agreement("S", "B", 0.5, 1.0))
    caps = {"S": {r: 1000.0 for r in resources}}
    return compute_multiresource_access(g, caps, resources)


def test_complementary_packing(benchmark):
    acc = _access(("cpu", "net"))
    sched = MultiResourceCommunityScheduler(
        acc,
        {"A": {"cpu": 2.0, "net": 0.1}, "B": {"cpu": 0.1, "net": 2.0}},
        window=W,
    )
    plan = benchmark(sched.schedule, {"A": 1000.0, "B": 1000.0})
    total = plan.served("A") + plan.served("B")
    # A alone: 100 cpu-units/window / 2 = 50 requests.  Jointly: ~95.
    print(f"\njoint rate {total:.1f} req/window vs 50 for either alone")
    assert total > 85.0


@pytest.mark.parametrize("m", [1, 2, 4, 8])
def test_solve_cost_vs_resource_types(benchmark, m):
    resources = tuple(f"r{i}" for i in range(m))
    acc = _access(resources)
    profiles = {
        "A": {r: 1.0 + 0.1 * i for i, r in enumerate(resources)},
        "B": {r: 2.0 - 0.1 * i for i, r in enumerate(resources)},
    }
    sched = MultiResourceCommunityScheduler(acc, profiles, window=W)
    plan = benchmark(sched.schedule, {"A": 200.0, "B": 200.0})
    assert plan.theta > 0.0
