"""Scaling study: enforcement and LP cost vs community size.

The paper expects "small" principal counts; this measures how far the
architecture stretches before the 100 ms window budget is threatened.
"""

import pytest

from repro.experiments.scaling import run_scaling_point, run_scaling_sweep


@pytest.mark.parametrize("n", [6, 10, 18])
def test_scaling_point(benchmark, n):
    point = benchmark.pedantic(
        lambda: run_scaling_point(n, seed=0, duration=10.0),
        rounds=1, iterations=1,
    )
    print(
        f"\nn={n}: LP {point.lp_ms_mean:.2f} ms mean / {point.lp_ms_p95:.2f} ms p95, "
        f"guarantees {point.guarantee_satisfaction * 100:.0f}%, "
        f"throughput {point.throughput:.0f}/{point.capacity:.0f} req/s"
    )
    # Guarantees hold and the solve fits comfortably inside a 100 ms window.
    assert point.guarantee_satisfaction >= 0.99
    assert point.lp_ms_p95 < 50.0


def test_scaling_sweep_lp_growth(benchmark):
    points = benchmark.pedantic(
        lambda: run_scaling_sweep(sizes=(6, 14, 30), duration=8.0),
        rounds=1, iterations=1,
    )
    print(f"\n{'n':>4} | {'LP ms':>7} | {'p95':>7} | {'guar %':>6} | {'util %':>6}")
    for p in points:
        util = 100.0 * p.throughput / p.capacity
        print(f"{p.n_principals:4d} | {p.lp_ms_mean:7.2f} | {p.lp_ms_p95:7.2f} "
              f"| {p.guarantee_satisfaction * 100:6.0f} | {util:6.1f}")
    assert all(p.guarantee_satisfaction >= 0.99 for p in points)
    # Cost grows with n^2 variables but stays within the window at n=30.
    assert points[-1].lp_ms_p95 < 100.0