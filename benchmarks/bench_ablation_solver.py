"""Ablation — LP solver backends: from-scratch simplex vs scipy HiGHS.

The paper argues per-window LP solving is cheap because "the complexity of
this strategy only depends on the number of principals involved".  This
benchmark times one community-scheduler window for growing principal
counts on both backends (the LP has ~n^2 variables) and verifies they
agree on the schedule.
"""

import numpy as np
import pytest

from repro.core.access import compute_access_levels
from repro.core.agreements import Agreement, AgreementGraph
from repro.scheduling.community import CommunityScheduler
from repro.scheduling.window import WindowConfig


def _ring_graph(n: int) -> AgreementGraph:
    """n principals in a sharing ring, each granting [0.3, 0.6] onward."""
    g = AgreementGraph()
    for i in range(n):
        g.add_principal(f"P{i}", capacity=100.0 * (1 + i % 3))
    for i in range(n):
        g.add_agreement(Agreement(f"P{i}", f"P{(i + 1) % n}", 0.3, 0.6))
    return g


def _demands(n: int) -> dict:
    rng = np.random.default_rng(0)
    return {f"P{i}": float(rng.uniform(0, 40)) for i in range(n)}


@pytest.mark.parametrize("n", [3, 6, 10])
@pytest.mark.parametrize("backend", ["simplex", "bounded", "scipy"])
def test_window_solve_time(benchmark, n, backend):
    sched = CommunityScheduler(
        compute_access_levels(_ring_graph(n)), WindowConfig(0.1), backend=backend
    )
    q = _demands(n)
    result = benchmark(sched.schedule, q)
    assert result.theta >= 0.0


@pytest.mark.parametrize("n", [3, 6, 10])
def test_backends_agree(benchmark, n):
    acc = compute_access_levels(_ring_graph(n))
    q = _demands(n)

    def both():
        s1 = CommunityScheduler(acc, WindowConfig(0.1), backend="simplex").schedule(q)
        s2 = CommunityScheduler(acc, WindowConfig(0.1), backend="scipy").schedule(q)
        return s1, s2

    s1, s2 = benchmark.pedantic(both, rounds=1, iterations=1)
    assert s1.theta == pytest.approx(s2.theta, abs=1e-6)
    for name in acc.names:
        assert s1.served(name) == pytest.approx(s2.served(name), abs=1e-5)
