"""Ablation — explicit vs implicit queuing (the §4.1 bunching anomaly).

The paper's first L7 prototype used explicit per-principal queues and found
that "server processing rates were not linearly increasing with increased
client activity": window-boundary releases bunch requests, so closed-loop
clients spend most of each window waiting at the redirector.  The shipped
implicit scheme (immediate forward within quota, self-redirect otherwise)
removes the hold-time entirely.

This benchmark regenerates that comparison: served rate vs client activity
(concurrent users) for both queuing modes against a 320 req/s server.
"""

import pytest

from repro.core.agreements import Agreement, AgreementGraph
from repro.experiments.harness import Scenario


def _run(queuing: str, users: int) -> float:
    g = AgreementGraph()
    g.add_principal("S", capacity=320.0)
    g.add_principal("A")
    g.add_agreement(Agreement("S", "A", 0.2, 1.0))
    sc = Scenario(g, seed=3)
    srv = sc.server("S", "S", 320.0)
    red = sc.l7("R", {"S": srv}, queuing=queuing)
    sc.client("C", "A", red, rate=1000.0, mode="closed", users=users,
              retry_delay=0.05)
    sc.run(15.0)
    return sc.meter.mean_rate("A", 5.0, 15.0)


@pytest.mark.parametrize("users", [4, 8, 16])
def test_throughput_vs_activity(benchmark, users):
    rates = benchmark.pedantic(
        lambda: (_run("implicit", users), _run("explicit", users)),
        rounds=1, iterations=1,
    )
    implicit, explicit = rates
    print(f"\nusers={users}: implicit {implicit:.0f} req/s, explicit {explicit:.0f} req/s")
    # Implicit saturates the server immediately; explicit is held far below
    # capacity by the window hold time (the paper's anomaly).
    assert implicit >= 300.0
    assert explicit < 0.7 * implicit


def test_explicit_needs_many_more_clients_to_saturate(benchmark):
    def sweep():
        return _run("explicit", 4), _run("explicit", 32)

    low, high = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(f"\nexplicit: 4 users -> {low:.0f} req/s, 32 users -> {high:.0f} req/s")
    assert low < 100.0          # far from the 320 req/s capacity
    assert high > 250.0         # only saturates with ~8x the activity
