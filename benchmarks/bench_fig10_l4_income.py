"""Fig 10 — L4 switch maximises provider income.

A provider with two 320 req/s servers, A [0.8,1] paying more than B
[0.2,1]: B is pinned to its mandatory 128 req/s while A is active, and the
four phases reproduce (512,128) -> (0,400) -> (400,240) -> (0,400).
"""

from _helpers import FIGURE_SCALE, run_figure

from repro.experiments.figures import run_fig10


def test_fig10_l4_income(benchmark):
    result = run_figure(benchmark, run_fig10, duration_scale=FIGURE_SCALE, seed=0)
    for stats in result.phases:
        print(f"\n{stats.name}: A {stats.rate('A'):.1f}  B {stats.rate('B'):.1f}")
