"""Ablation — windowed quotas vs the credit-based admission engine (§6).

Both engines track the same LP allocation, but the credit scheduler accrues
continuously where the quota resets at window boundaries.  This benchmark
compares (a) enforcement accuracy and (b) admission smoothness — the
dispersion of per-100ms admitted counts — under a flooding principal.
"""

import numpy as np
import pytest

from repro.core.access import compute_access_levels
from repro.core.agreements import Agreement, AgreementGraph
from repro.experiments.harness import Scenario


def _run(queuing: str):
    g = AgreementGraph()
    g.add_principal("S", capacity=320.0)
    g.add_principal("A")
    g.add_principal("B")
    g.add_agreement(Agreement("S", "A", 0.2, 1.0))
    g.add_agreement(Agreement("S", "B", 0.8, 1.0))
    sc = Scenario(g, seed=6, bin_width=0.1)
    srv = sc.server("S", "S", 320.0)
    red = sc.l7("R", {"S": srv}, queuing=queuing)
    sc.client("CA", "A", red, rate=405.0)
    sc.client("CB", "B", red, rate=135.0)
    sc.run(20.0)
    b_rate = sc.meter.mean_rate("B", 5.0, 20.0)
    a_rate = sc.meter.mean_rate("A", 5.0, 20.0)
    _, a_bins = sc.meter.series("A")
    steady = a_bins[60:190]           # per-100ms service counts
    return a_rate, b_rate, float(np.std(steady))


@pytest.mark.parametrize("queuing", ["implicit", "credits"])
def test_enforcement_per_engine(benchmark, queuing):
    a, b, jitter = benchmark.pedantic(lambda: _run(queuing), rounds=1, iterations=1)
    print(f"\n{queuing}: A {a:.1f}, B {b:.1f} req/s; "
          f"A per-window service stddev {jitter:.2f}")
    assert b == pytest.approx(135.0, rel=0.1)
    assert a == pytest.approx(185.0, rel=0.1)


def test_both_engines_agree(benchmark):
    results = benchmark.pedantic(
        lambda: (_run("implicit"), _run("credits")), rounds=1, iterations=1
    )
    (a1, b1, j1), (a2, b2, j2) = results
    print(f"\nimplicit: A {a1:.1f} B {b1:.1f} jitter {j1:.2f}")
    print(f"credits:  A {a2:.1f} B {b2:.1f} jitter {j2:.2f}")
    assert a2 == pytest.approx(a1, rel=0.08)
    assert b2 == pytest.approx(b1, rel=0.08)
