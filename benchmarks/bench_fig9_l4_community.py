"""Fig 9 — L4 switch enforces community agreements across owned servers.

A and B own one 320 req/s server each; B shares [0.5, 0.5] with A.  Four
phases reproduce (480,160) -> (0,320) -> (400,240) -> (0,320).
"""

from _helpers import FIGURE_SCALE, run_figure

from repro.experiments.figures import run_fig9


def test_fig9_l4_community(benchmark):
    result = run_figure(benchmark, run_fig9, duration_scale=FIGURE_SCALE, seed=0)
    for stats in result.phases:
        print(f"\n{stats.name}: A {stats.rate('A'):.1f}  B {stats.rate('B'):.1f}")
