"""Fig 3 — the ticket/currency valuation worked example.

Regenerates every number in the paper's Fig 3: gross currency values,
ticket real values, and the final (mandatory, optional) pairs.
"""

from repro.experiments.figures import run_fig3


def test_fig3_currency_valuation(benchmark):
    result = benchmark(run_fig3)
    assert result.ok
    print("\nfinal (mandatory, optional):")
    for p, (m, o) in sorted(result.finals.items()):
        print(f"  {p}: ({m:.0f}, {o:.0f})")
    for t, v in result.tickets.items():
        print(f"  {t}: {v:.0f}")
