"""Fault matrix — enforcement survives a coordination partition.

R2 is partitioned from the combining tree for the middle third of the
run: its view goes stale, the allocator degrades to the conservative 1/R
fallback, and principal B is held at (never below) its 32 req/s
mandatory floor while A expands into the freed capacity.  After the heal
the membership layer rejoins R2 and both principals re-converge to the
agreed (A 255, B 65) split — asserted via the paper-shape expectations
and, within the scenario, the invariant checker's liveness ledger.
"""

from _helpers import FIGURE_SCALE, run_figure

from repro.experiments.faultmatrix import CONSERVATIVE_B, run_fault_matrix


def test_fault_matrix(benchmark):
    result = run_figure(
        benchmark, run_fault_matrix, duration_scale=FIGURE_SCALE, seed=0
    )
    for stats in result.phases:
        print(f"\n{stats.name}: A {stats.rate('A'):.1f}  B {stats.rate('B'):.1f}")
    print(f"\n{result.notes}")
    # B's mandatory floor holds straight through the partition...
    assert result.phase("p2_partition").rate("B") >= 0.85 * CONSERVATIVE_B
    # ...and costs it the coordinated share until the heal.
    assert result.phase("p2_partition").rate("B") < 0.7 * result.phase(
        "p1_agreed"
    ).rate("B")
    # Recovery: the post-heal phase matches the pre-fault split.
    agreed = result.phase("p1_agreed")
    recovered = result.phase("p3_recovered")
    for principal in ("A", "B"):
        assert abs(recovered.rate(principal) - agreed.rate(principal)) <= (
            0.1 * agreed.rate(principal)
        )
