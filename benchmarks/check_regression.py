"""CI bench-regression gate.

Compares a freshly recorded ``BENCH_core.json`` against the committed
baseline (copied aside before the benchmark run rewrites the ledger) and
fails if any shared entry's median regressed beyond the threshold.

Usage (what ``.github/workflows/ci.yml`` does)::

    cp benchmarks/BENCH_core.json /tmp/bench_baseline.json
    pytest benchmarks/bench_micro_core.py benchmarks/bench_request_path.py ...
    python benchmarks/check_regression.py \
        --baseline /tmp/bench_baseline.json \
        --current benchmarks/BENCH_core.json --threshold 1.25

Entries present on only one side (new or retired benchmarks) are reported
but never fail the gate; only a shared entry whose fresh median exceeds
``threshold x`` its baseline median does.
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    with open(path) as fh:
        data = json.load(fh)
    if not isinstance(data, dict):
        raise SystemExit(f"{path}: expected a JSON object ledger")
    return data


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True,
                    help="committed ledger saved before the bench run")
    ap.add_argument("--current", default="benchmarks/BENCH_core.json",
                    help="freshly recorded ledger")
    ap.add_argument("--threshold", type=float, default=1.25,
                    help="fail when current > threshold * baseline median")
    ap.add_argument("--require", action="append", default=[],
                    metavar="NAME",
                    help="fail unless NAME was recorded in the current "
                         "ledger (repeatable); catches a benchmark that "
                         "silently stopped running")
    args = ap.parse_args(argv)

    baseline = load(args.baseline)
    current = load(args.current)
    regressions = []
    for name in sorted(set(baseline) & set(current)):
        b = baseline[name].get("median_ms")
        c = current[name].get("median_ms")
        if not b or not c:
            continue
        ratio = c / b
        flag = "REGRESSION" if ratio > args.threshold else "ok"
        print(f"{name:40s} {b:12.3f} -> {c:12.3f} ms  ({ratio:5.2f}x) {flag}")
        if ratio > args.threshold:
            regressions.append((name, b, c, ratio))
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:40s} {'new':>12s} -> "
              f"{current[name].get('median_ms', 0.0):12.3f} ms")
    for name in sorted(set(baseline) - set(current)):
        print(f"{name:40s} not re-recorded (kept baseline)")

    missing = [name for name in args.require if name not in current]
    if missing:
        print(f"\nrequired benchmark(s) missing from {args.current}: "
              f"{', '.join(missing)}", file=sys.stderr)
        return 1
    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed beyond "
              f"{args.threshold:.2f}x:", file=sys.stderr)
        for name, b, c, ratio in regressions:
            print(f"  {name}: {b:.3f} -> {c:.3f} ms ({ratio:.2f}x)",
                  file=sys.stderr)
        return 1
    print("\nbench regression gate: clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
