"""Ablation — flow computation strategies (§3.1.1).

The paper's Formulae 1-4 enumerate simple transitive paths; the closed
form solves two linear systems.  This benchmark times both on layered
agreement DAGs of growing size and checks they agree — quantifying why the
closed form is the production default (path enumeration is exponential in
the worst case but exact for the paper's "small number of principals").
"""

import numpy as np
import pytest

from repro.core.agreements import Agreement, AgreementGraph
from repro.core.flows import closed_form_flows, path_flows


def _layered_dag(layers: int, width: int) -> AgreementGraph:
    g = AgreementGraph()
    for l in range(layers):
        for w in range(width):
            g.add_principal(f"L{l}W{w}", capacity=100.0)
    for l in range(layers - 1):
        for w in range(width):
            for w2 in range(width):
                g.add_agreement(
                    Agreement(f"L{l}W{w}", f"L{l+1}W{w2}",
                              0.8 / width, 0.9 / width)
                )
    return g


@pytest.mark.parametrize("layers,width", [(3, 2), (4, 2), (3, 3)])
def test_closed_form_time(benchmark, layers, width):
    g = _layered_dag(layers, width)
    flows = benchmark(closed_form_flows, g)
    flows.check_conservation()


@pytest.mark.parametrize("layers,width", [(3, 2), (4, 2), (3, 3)])
def test_path_enumeration_time(benchmark, layers, width):
    g = _layered_dag(layers, width)
    flows = benchmark(path_flows, g)
    flows.check_conservation()


def test_methods_agree_on_dense_dag(benchmark):
    g = _layered_dag(4, 2)

    def both():
        return closed_form_flows(g), path_flows(g)

    f1, f2 = benchmark.pedantic(both, rounds=1, iterations=1)
    np.testing.assert_allclose(f1.MI, f2.MI, atol=1e-8)
    np.testing.assert_allclose(f1.OI, f2.OI, atol=1e-8)
