"""Benchmark helpers.

Figure benchmarks execute a full reduced-scale simulation once per round
(``pedantic`` mode) and assert the paper's shape criteria on the result, so
``pytest benchmarks/ --benchmark-only`` doubles as the reproduction run.
"""

import pytest

# Phase scale for timeline figures: 0.1 => 10 s phases (steady state settles
# within ~2 s; the assertions use settled means).
FIGURE_SCALE = 0.15


def run_figure(benchmark, fn, **kwargs):
    result = benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)
    assert result.ok, f"{result.figure} deviations: {result.deviations()}"
    return result
