"""Ablation — size-proportional request costs (§4).

"Large requests are treated as multiple small ones for the purpose of
scheduling": with ``RequestMix(size_cost=True)`` a request consumes
``max(1, size / 6KB)`` scheduling units of quota and of server capacity.
Enforcement must then hold in *units*, not request counts — a principal
sending bulky requests gets proportionally fewer of them through.
"""

import pytest

from repro.cluster.workload import ReplySizeSampler, RequestMix
from repro.core.agreements import Agreement, AgreementGraph
from repro.experiments.harness import Scenario


def _run():
    g = AgreementGraph()
    g.add_principal("S", capacity=320.0)       # 320 units/s
    g.add_principal("A")
    g.add_principal("B")
    g.add_agreement(Agreement("S", "A", 0.5, 1.0))
    g.add_agreement(Agreement("S", "B", 0.5, 1.0))
    sc = Scenario(g, seed=9)
    srv = sc.server("S", "S", 320.0)
    red = sc.l7("R", {"S": srv})
    # A sends bulky requests (~3 units each); B sends small ones (1 unit).
    bulky = RequestMix(
        size_cost=True,
        sampler=ReplySizeSampler(mean_bytes=18_000.0, min_bytes=6_000,
                                 max_bytes=120_000),
        unit_bytes=6144.0,   # the system's 6 KB average-request unit
    )
    small = RequestMix(size_cost=False)
    sc.client("CA", "A", red, rate=400.0, mix=bulky)
    sc.client("CB", "B", red, rate=400.0, mix=small)
    sc.run(20.0)
    return {
        "A_requests": sc.meter.mean_rate("A", 8.0, 20.0),
        "B_requests": sc.meter.mean_rate("B", 8.0, 20.0),
        "A_units": sc.meter.mean_rate("units:A", 8.0, 20.0),
        "B_units": sc.meter.mean_rate("units:B", 8.0, 20.0),
    }


def test_unit_enforcement_with_mixed_sizes(benchmark):
    r = benchmark.pedantic(_run, rounds=1, iterations=1)
    print(f"\nA (bulky): {r['A_requests']:.0f} req/s = {r['A_units']:.0f} units/s")
    print(f"B (small): {r['B_requests']:.0f} req/s = {r['B_units']:.0f} units/s")
    # The 50/50 agreement is enforced in UNITS...
    assert r["A_units"] == pytest.approx(160.0, rel=0.12)
    assert r["B_units"] == pytest.approx(160.0, rel=0.12)
    # ...which means far fewer bulky requests get through.
    assert r["A_requests"] < 0.5 * r["B_requests"]
