"""simlint timing pair: cold whole-program lint vs warm-cache re-lint.

The lint is meant to run as a pre-commit/CI gate, so its wall time is a
product surface: the cold number bounds a fresh checkout, and the warm
number is what every subsequent run pays.  The warm run re-hashes every
file but re-parses nothing, so it must come in at >= 5x the cold speed —
asserted here and recorded in the committed ledger behind the 25%
regression gate.
"""

import os

from repro.analysis.simlint import LintCache, lint_project
from repro.experiments.benchrecord import record_bench

BENCH_PATH = os.path.join(os.path.dirname(__file__), "BENCH_core.json")
SRC_REPRO = os.path.normpath(
    os.path.join(os.path.dirname(__file__), os.pardir, "src", "repro")
)

_WARM_SPEEDUP_FLOOR = 5.0

# Filled by the cold test so the warm test can assert the speedup ratio
# against the very numbers the ledger records.
_cold_median_s = [0.0]


def _record(benchmark, name, **meta):
    record_bench(
        name, benchmark.stats.stats.median * 1000.0, meta=meta, path=BENCH_PATH
    )


def test_simlint_full_repo(benchmark):
    """Cold lint of src/repro: parse every file, both rule layers."""
    report = benchmark.pedantic(
        lambda: lint_project([SRC_REPRO]), rounds=1, iterations=3
    )
    assert report.parsed == len(report.files) > 50
    assert report.violations == []
    _cold_median_s[0] = benchmark.stats.stats.median
    _record(benchmark, "simlint_full_repo",
            files=len(report.files), findings=len(report.violations))


def test_simlint_warm_cache(benchmark, tmp_path):
    """Warm re-lint: hash everything, parse nothing, re-run project rules."""
    cache_file = str(tmp_path / "simlint-cache.json")
    prime = LintCache(cache_file)
    cold = lint_project([SRC_REPRO], cache=prime)
    prime.save()
    if _cold_median_s[0] == 0.0:  # warm test run standalone
        import time

        t0 = time.perf_counter()
        lint_project([SRC_REPRO])
        _cold_median_s[0] = time.perf_counter() - t0

    def warm_run():
        return lint_project([SRC_REPRO], cache=LintCache(cache_file))

    report = benchmark.pedantic(warm_run, rounds=3, iterations=1)
    assert report.parsed == 0
    assert report.cache_hits == len(report.files)
    assert report.violations == cold.violations
    warm_median = benchmark.stats.stats.median
    assert warm_median * _WARM_SPEEDUP_FLOOR <= _cold_median_s[0], (
        f"warm cache too slow: {warm_median * 1e3:.1f}ms warm vs "
        f"{_cold_median_s[0] * 1e3:.1f}ms cold "
        f"(need >= {_WARM_SPEEDUP_FLOOR}x)"
    )
    _record(benchmark, "simlint_warm_cache",
            files=len(report.files), cache_hits=report.cache_hits,
            speedup_floor=_WARM_SPEEDUP_FLOOR)
