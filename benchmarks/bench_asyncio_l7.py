"""Real-socket Layer-7 throughput (the paper's "low overhead" claim).

Measures the asyncio redirector stack on localhost: redirect decision rate
at the front end and end-to-end completions through a capacity-limited
origin.  The paper reports its L4 switch used <15% CPU and its L7
redirector doubled round trips; here the question is simply whether the
Python front end keeps far ahead of the origins it fronts.
"""

import asyncio

import pytest

from repro.core.access import compute_access_levels
from repro.core.agreements import Agreement, AgreementGraph
from repro.l7.asyncio_client import AsyncLoadGenerator
from repro.l7.asyncio_origin import OriginServer
from repro.l7.asyncio_redirector import AsyncRedirector


def _access(capacity):
    g = AgreementGraph()
    g.add_principal("S", capacity=capacity)
    g.add_principal("A")
    g.add_agreement(Agreement("S", "A", 0.5, 1.0))
    return compute_access_levels(g)


def _drive(origin_capacity: float, offered: float, duration: float = 3.0):
    async def body():
        origin = OriginServer("S1", capacity=origin_capacity)
        await origin.start()
        red = AsyncRedirector("R1", _access(origin_capacity),
                              backends={"S": [origin.address]})
        await red.start()
        gen = AsyncLoadGenerator("A", red.address, rate=offered, concurrency=96)
        res = await gen.run(duration)
        decisions = red.admitted["A"] + red.self_redirects["A"]
        await red.stop()
        await origin.stop()
        return res["rate"], decisions / duration

    return asyncio.run(body())


def test_served_rate_tracks_origin_capacity(benchmark):
    served, decision_rate = benchmark.pedantic(
        lambda: _drive(origin_capacity=400.0, offered=600.0),
        rounds=1, iterations=1,
    )
    print(f"\nserved {served:.0f} req/s; redirector handled "
          f"{decision_rate:.0f} decisions/s")
    # The origin, not the redirector, is the bottleneck.
    assert served >= 300.0
    assert decision_rate >= served


def test_decision_rate_headroom(benchmark):
    """Front-end decision throughput with a fast origin: the redirector
    sustains well over the paper's 320 req/s server capacity."""
    served, decision_rate = benchmark.pedantic(
        lambda: _drive(origin_capacity=5000.0, offered=1500.0),
        rounds=1, iterations=1,
    )
    print(f"\nserved {served:.0f} req/s; {decision_rate:.0f} decisions/s")
    assert served >= 600.0
