"""Ablation — coordinated enforcement vs a classical WRR front end.

The paper's §6 positions its work against weighted-round-robin load
balancers, which "focus on an orthogonal problem".  This benchmark makes
the difference concrete on the Fig 6 workload: capacity-weighted WRR
splits the server by offered load (B squeezed to ~80 req/s, violating its
256 req/s guarantee), while the coordinated scheduler serves B's demand in
full at identical total throughput.
"""

from repro.experiments.baselines import run_enforcement_comparison


def test_enforcement_vs_wrr(benchmark):
    cmp = benchmark.pedantic(
        lambda: run_enforcement_comparison(duration=20.0, seed=0),
        rounds=1, iterations=1,
    )
    print(
        f"\ncoordinated: A {cmp.coordinated['A']:.0f}  B {cmp.coordinated['B']:.0f}"
        f"\npassthrough: A {cmp.passthrough['A']:.0f}  B {cmp.passthrough['B']:.0f}"
        f"\nB's guarantee: min(demand 135, MC {cmp.guarantees['B']:.0f})"
    )
    assert cmp.violation("coordinated", "B") < 10.0
    assert cmp.passthrough_violates
