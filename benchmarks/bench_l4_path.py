"""Scale benchmark tier: the L4 packet path at ~50k flows.

Drives a Fig 9-shaped world — two principals with a [0.5, 0.5] agreement,
two 320 req/s servers, one L4 switch + window daemon — through ~50k
admitted-or-refused flows, A/B-ing the flow-record fast lane
(``fast_lane=True``: slotted conntrack/NAT arenas, precomputed best-slack
heap, coalesced reinjection pump) against the retained per-packet scalar
path.

Clients are replaced by a slim arrival pump (precomputed per-phase arrival
times, drained in 10 ms ticks) so the switch path dominates the profile
rather than client-machine bookkeeping.  Both lanes see bit-identical
arrivals; the run asserts the per-principal admitted/refused counters agree
exactly before any timing number is recorded.

The speedup assertion is the PR's acceptance gate: the fast lane must
clear 3x the scalar path's flow throughput.  Headline medians land in
``benchmarks/BENCH_core.json`` via ``record_bench``.
"""

import os
import time

import numpy as np

from repro.cluster.client import Defer, Drop
from repro.cluster.request import Request
from repro.cluster.server import Server
from repro.core.agreements import Agreement, AgreementGraph
from repro.experiments.benchrecord import record_bench
from repro.experiments.harness import Scenario
from repro.scheduling.window import WindowConfig
from repro.sim.rng import RngStreams

BENCH_PATH = os.path.join(os.path.dirname(__file__), "BENCH_core.json")

PHASE = 18.0          # fig9 phase length; 4 phases per run
RATE = 400.0          # req/s per synthetic client
TICK = 0.01           # arrival-pump drain quantum
# fig9 client windows: C1 (A) phases 1+3, C2 (A) phase 1, C3 (B) always.
# Offered load = (2 + 1 + 4) * PHASE * RATE = 50,400 flows per run.
CLIENTS = (
    ("A", ((0.0, PHASE), (2 * PHASE, 3 * PHASE))),
    ("A", ((0.0, PHASE),)),
    ("B", ((0.0, 4 * PHASE),)),
)


def _arrivals():
    """Merged (time, principal) arrival schedule, identical for both lanes.

    Sorted uniform order statistics per phase window — the conditional
    distribution of Poisson arrivals given their count — with the count
    pinned to the expectation so every run offers exactly the same load.
    """
    rng = RngStreams(7).get("bench:l4:arrivals")
    times = []
    prins = []
    for principal, windows in CLIENTS:
        for lo, hi in windows:
            n = int(round(RATE * (hi - lo)))
            ts = np.sort(rng.uniform(lo, hi, size=n))
            times.append(ts)
            prins.extend([principal] * n)
    merged = np.concatenate(times)
    order = np.argsort(merged, kind="stable")
    # Plain Python floats: the pump compares/constructs per arrival, and
    # numpy scalar unboxing would dominate the driver's share of the
    # profile (it is shared overhead, but keep it small so the switch
    # path is what the A/B actually measures).
    return merged[order].tolist(), [prins[i] for i in order]


_TIMES, _PRINS = _arrivals()


def _run(fast_lane: bool):
    """One ~50k-flow run; returns per-principal counter dicts."""
    g = AgreementGraph()
    g.add_principal("A", capacity=320.0)
    g.add_principal("B", capacity=320.0)
    g.add_agreement(Agreement("B", "A", 0.5, 0.5))
    sc = Scenario(g, window=WindowConfig(0.5), seed=0, l4_fast_lane=fast_lane)
    # Servers built directly (not via ``sc.server``) so no completion-meter
    # hook runs per flow — the profile should be the switch path, not
    # harness bookkeeping.  Both lanes shed the identical overhead.
    sa = Server(sc.sim, "SA", 320.0, owner="A")
    sb = Server(sc.sim, "SB", 320.0, owner="B")
    switch = sc.l4("SW", {"A": sa, "B": sb})

    sim = sc.sim
    times, prins = _TIMES, _PRINS
    n = len(times)
    completed = {"A": 0, "B": 0}
    refused = {"A": 0, "B": 0}
    state = {"i": 0}

    def done(request):
        completed[request.principal] += 1

    handle = switch.handle
    refuse = (Defer, Drop)

    def tick():
        i = state["i"]
        now = sim.now
        while i < n and times[i] <= now:
            principal = prins[i]
            req = Request(principal, "bench", times[i])
            if isinstance(handle(req, done), refuse):
                refused[principal] += 1
            i += 1
        state["i"] = i
        if i < n:
            sim.schedule(TICK, tick)

    sim.schedule(0.0, tick)
    sc.run(4 * PHASE + 1.0)
    handled = sum(completed.values()) + sum(refused.values())
    assert state["i"] == n, f"pump drained {state['i']}/{n} arrivals"
    assert handled > 0.5 * n, f"only {handled}/{n} flows resolved"
    return {
        "completed": completed,
        "refused": refused,
        "admitted": dict(switch.admitted),
        "dropped": dict(switch.dropped),
        "flows": n,
    }


def _best_of(fn, reps=3):
    """Best-of-N wall-clock (best, not median: scheduling noise only ever
    adds time) plus the last run's return value."""
    best = float("inf")
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_l4_path_lane_parity():
    """Both lanes must resolve the identical arrival schedule identically:
    same per-principal admitted, dropped, completed and refused counters."""
    fast = _run(fast_lane=True)
    scalar = _run(fast_lane=False)
    assert fast == scalar, f"lane divergence: {fast} != {scalar}"


def test_l4_path_fast(benchmark):
    """~50k-flow fig9-shaped run through the flow-record fast lane."""
    out = benchmark.pedantic(lambda: _run(fast_lane=True), rounds=3,
                             iterations=1)
    median_s = benchmark.stats.stats.median
    record_bench(
        "l4_path_fast", median_s * 1000.0,
        meta={"flows": out["flows"],
              "flows_per_s": round(out["flows"] / median_s),
              "admitted": sum(out["admitted"].values())},
        path=BENCH_PATH,
    )


def test_l4_path_scalar(benchmark):
    """Same run through the per-packet scalar path (``fast_lane=False``)."""
    out = benchmark.pedantic(lambda: _run(fast_lane=False), rounds=3,
                             iterations=1)
    median_s = benchmark.stats.stats.median
    record_bench(
        "l4_path_scalar", median_s * 1000.0,
        meta={"flows": out["flows"],
              "flows_per_s": round(out["flows"] / median_s),
              "admitted": sum(out["admitted"].values())},
        path=BENCH_PATH,
    )


def test_l4_path_speedup():
    """Acceptance gate: fast lane >= 3x scalar flow throughput."""
    t_fast, out_fast = _best_of(lambda: _run(fast_lane=True))
    t_scalar, out_scalar = _best_of(lambda: _run(fast_lane=False))
    assert out_fast == out_scalar
    fast_rate = out_fast["flows"] / t_fast
    scalar_rate = out_scalar["flows"] / t_scalar
    speedup = fast_rate / scalar_rate
    record_bench(
        "l4_path_speedup", t_fast * 1000.0,
        meta={"speedup_x": round(speedup, 2),
              "fast_flows_per_s": round(fast_rate),
              "scalar_flows_per_s": round(scalar_rate)},
        path=BENCH_PATH,
    )
    assert speedup >= 3.0, (
        f"fast lane {fast_rate:.0f} flows/s vs scalar {scalar_rate:.0f} "
        f"flows/s = {speedup:.2f}x (< 3x floor)"
    )
