"""Fig 8 — combining-tree propagation delay is tolerated gracefully.

Queue-length broadcasts lag by ~4 s (paper: 10 s): the redirector with no
global information conservatively uses half its mandatory tickets, requests
compete during the lag transient after load changes, and allocations
converge to the agreed (A 255, B 65) split once information arrives.
"""

from _helpers import FIGURE_SCALE, run_figure

from repro.experiments.figures import run_fig8


def test_fig8_network_delay(benchmark):
    result = run_figure(
        benchmark, run_fig8, duration_scale=FIGURE_SCALE, seed=0, lag=4.0
    )
    for stats in result.phases:
        print(f"\n{stats.name}: A {stats.rate('A'):.1f}  B {stats.rate('B'):.1f}")
    conservative = result.phase("p1_conservative").rate("B")
    full = result.phase("p2_full").rate("B")
    assert conservative < 0.5 * full  # the half-mandatory start is visible
