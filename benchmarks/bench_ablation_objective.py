"""Ablation — what the community objective actually optimises.

The community LP maximises the minimum served queue fraction, which the
paper equates with minimising the maximum response time across
organisations.  This benchmark makes that visible with closed-loop clients:
under the community objective two symmetric principals see symmetric
response times; replacing it with a provider objective that prioritises one
principal (higher price) drives the other's response times — and therefore
the community-wide maximum — up, at identical total throughput.
"""

import numpy as np
import pytest

from repro.core.agreements import Agreement, AgreementGraph
from repro.experiments.harness import Scenario


def _run(mode: str, prices=None):
    g = AgreementGraph()
    g.add_principal("S", capacity=200.0)
    g.add_principal("A")
    g.add_principal("B")
    g.add_agreement(Agreement("S", "A", 0.1, 1.0))
    g.add_agreement(Agreement("S", "B", 0.1, 1.0))
    sc = Scenario(g, seed=8)
    srv = sc.server("S", "S", 200.0)
    red = sc.l7("R", {"S": srv}, mode=mode, prices=prices)
    clients = {}
    for p in ("A", "B"):
        clients[p] = sc.client(
            f"C{p}", p, red, rate=400.0, mode="closed", users=24,
            retry_delay=0.1,
        )
    sc.run(25.0)
    out = {}
    for p, c in clients.items():
        rts = np.array(c.response_times[len(c.response_times) // 3:])
        out[p] = {
            "mean_rt": float(rts.mean()) if rts.size else np.inf,
            "p95_rt": float(np.percentile(rts, 95)) if rts.size else np.inf,
            "rate": sc.meter.mean_rate(p, 8.0, 25.0),
        }
    return out


def test_community_minimises_max_response_time(benchmark):
    community, skewed = benchmark.pedantic(
        lambda: (_run("community"), _run("provider", prices={"A": 5.0, "B": 1.0})),
        rounds=1, iterations=1,
    )
    for name, res in (("community", community), ("priority(A)", skewed)):
        print(f"\n{name}:")
        for p in ("A", "B"):
            print(f"  {p}: {res[p]['rate']:6.1f} req/s, "
                  f"mean RT {res[p]['mean_rt'] * 1000:7.1f} ms, "
                  f"p95 {res[p]['p95_rt'] * 1000:7.1f} ms")
    max_rt_comm = max(community[p]["mean_rt"] for p in ("A", "B"))
    max_rt_skew = max(skewed[p]["mean_rt"] for p in ("A", "B"))
    # Symmetric service under the community objective...
    assert community["A"]["mean_rt"] == pytest.approx(
        community["B"]["mean_rt"], rel=0.4
    )
    # ...and a strictly better community-wide worst case.
    assert max_rt_comm < max_rt_skew
