"""Ablation — scheduling-window length sensitivity.

The paper fixes 100 ms windows without justification; this ablation sweeps
the window length and measures enforcement error (deviation of B's served
rate from its guaranteed 135 req/s in the Fig 6 phase-1 scenario) and the
LP solve load per second of operation.
"""

import pytest

from repro.core.agreements import Agreement, AgreementGraph
from repro.experiments.harness import Scenario
from repro.scheduling.window import WindowConfig


def _fig6_error(window_len: float, duration: float = 25.0) -> float:
    g = AgreementGraph()
    g.add_principal("S", capacity=320.0)
    g.add_principal("A")
    g.add_principal("B")
    g.add_agreement(Agreement("S", "A", 0.2, 1.0))
    g.add_agreement(Agreement("S", "B", 0.8, 1.0))
    sc = Scenario(g, window=WindowConfig(window_len), seed=4)
    srv = sc.server("S", "S", 320.0)
    red = sc.l7("R", {"S": srv})
    sc.client("CA", "A", red, rate=270.0)
    sc.client("CB", "B", red, rate=135.0)
    sc.run(duration)
    b = sc.meter.mean_rate("B", 10.0, duration)
    return abs(b - 135.0) / 135.0


@pytest.mark.parametrize("window_len", [0.05, 0.1, 0.2, 0.5])
def test_enforcement_error_vs_window(benchmark, window_len):
    err = benchmark.pedantic(
        lambda: _fig6_error(window_len), rounds=1, iterations=1
    )
    print(f"\nwindow {window_len*1000:.0f} ms: enforcement error {err*100:.1f}%")
    # Enforcement holds across an order of magnitude of window lengths.
    assert err < 0.12


def test_very_long_window_degrades_responsiveness(benchmark):
    """A 1 s window still enforces the steady-state share, but reaction to
    phase changes stretches with the window (measured as the error during
    the 5 s after a demand step)."""
    def run():
        g = AgreementGraph()
        g.add_principal("S", capacity=320.0)
        g.add_principal("A")
        g.add_principal("B")
        g.add_agreement(Agreement("S", "A", 0.2, 1.0))
        g.add_agreement(Agreement("S", "B", 0.8, 1.0))
        out = {}
        for wl in (0.1, 1.0):
            sc = Scenario(g.copy(), window=WindowConfig(wl), seed=5)
            srv = sc.server("S", "S", 320.0)
            red = sc.l7("R", {"S": srv})
            sc.client("CA", "A", red, rate=270.0)
            sc.client("CB", "B", red, rate=135.0, windows=[(10.0, 30.0)])
            sc.run(30.0)
            # B's shortfall right after it starts at t=10.
            out[wl] = sc.meter.mean_rate("B", 10.0, 15.0)
        return out

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nB ramp-up rate: 100ms window {rates[0.1]:.0f}, 1s window {rates[1.0]:.0f}")
    assert rates[0.1] >= rates[1.0] - 5.0  # shorter window reacts at least as fast
