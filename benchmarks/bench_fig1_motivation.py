"""Fig 1 — end-point enforcement violates the SLA; coordination restores it.

Regenerates the paper's motivating numbers: aggregate (A 30, B 70) under
independent per-server enforcement versus (A 20, B 80) under coordinated
scheduling.
"""

from repro.experiments.figures import run_fig1


def test_fig1_motivating_example(benchmark):
    result = benchmark(run_fig1)
    assert result.ok
    assert result.endpoint["B"] < 80.0 - 5.0      # SLA violated by baseline
    assert abs(result.coordinated["B"] - 80.0) < 1.0


def test_fig1_report_rows(benchmark):
    """Print the exact rows the paper's figure annotates."""
    result = benchmark(run_fig1)
    print(
        f"\nend-point:   A {result.endpoint['A']:.1f}  B {result.endpoint['B']:.1f}"
        f"\ncoordinated: A {result.coordinated['A']:.1f}  B {result.coordinated['B']:.1f}"
    )


def test_fig1_full_simulation(benchmark):
    """The same comparison end-to-end: biased pass-through redirectors in
    front of independently enforcing servers, vs coordinated L7
    redirectors over a combining tree — with real clients and windows."""
    from repro.experiments.figures import run_fig1_distributed

    result = benchmark.pedantic(
        lambda: run_fig1_distributed(duration=25.0, seed=0),
        rounds=1, iterations=1,
    )
    print(
        f"\nend-point:   A {result.endpoint['A']:.1f}  B {result.endpoint['B']:.1f}"
        f"\ncoordinated: A {result.coordinated['A']:.1f}  B {result.coordinated['B']:.1f}"
    )
    assert result.endpoint["B"] < 75.0          # SLA violated
    assert abs(result.coordinated["B"] - 80.0) < 4.0
